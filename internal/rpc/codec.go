// Package rpc implements the RPC message format, service registry, and
// marshalling layer shared by every network stack in the simulation.
//
// The wire format is deliberately simple — a fixed header followed by
// varint-length-prefixed argument fields — so that both a software codec
// (whose per-byte CPU cost the kernel and bypass stacks pay) and
// Lauberhorn's NIC-resident decoder (whose cost the host does not pay) can
// parse it. This mirrors the paper's use of hardware RPC deserialization in
// the style of Optimus Prime / Cerebros / ProtoAcc.
//
// Determinism invariants: encoding and decoding are pure functions of
// their byte inputs, and the service registry iterates in registration
// order — nothing here can perturb a replay.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message kinds.
const (
	KindRequest  = 1
	KindResponse = 2
)

// Magic identifies an RPC message; Version is the format revision.
const (
	Magic   = 0x4c48 // "LH"
	Version = 1
)

// HeaderLen is the fixed RPC header size in bytes:
// magic(2) version(1) kind(1) service(4) method(2) flags(2) id(8) status(2)
// bodyLen(2).
const HeaderLen = 24

// Flag bits in the RPC header.
const (
	// FlagCompressed marks the body as compressed; Lauberhorn's decoder
	// pipeline runs its decompression stage only for such messages.
	FlagCompressed = 1 << 0
	// FlagEncrypted marks the body as encrypted.
	FlagEncrypted = 1 << 1
	// FlagOneWay marks a request that expects no response.
	FlagOneWay = 1 << 2
)

// Status codes carried on responses.
const (
	StatusOK           = 0
	StatusNoSuchMethod = 1
	StatusNoSuchSvc    = 2
	StatusError        = 3
	StatusOverloaded   = 4
)

// Errors returned by the codec.
var (
	ErrShort      = errors.New("rpc: message too short")
	ErrBadMagic   = errors.New("rpc: bad magic")
	ErrBadVersion = errors.New("rpc: unsupported version")
	ErrBadKind    = errors.New("rpc: unknown message kind")
	ErrBadBody    = errors.New("rpc: body length mismatch")
)

// Header is the fixed part of every RPC message.
type Header struct {
	Kind    uint8
	Service uint32
	Method  uint16
	Flags   uint16
	ID      uint64
	Status  uint16
	BodyLen uint16
}

// Message is a parsed RPC message; Body aliases the input buffer.
type Message struct {
	Header
	Body []byte
}

// IsRequest reports whether the message is a request.
func (m *Message) IsRequest() bool { return m.Kind == KindRequest }

// Size returns the encoded size of the message in bytes.
func (m *Message) Size() int { return HeaderLen + len(m.Body) }

// String renders a compact diagnostic form.
func (m *Message) String() string {
	k := "resp"
	if m.IsRequest() {
		k = "req"
	}
	return fmt.Sprintf("rpc-%s{svc=%d m=%d id=%d body=%dB}", k, m.Service, m.Method, m.ID, len(m.Body))
}

// Encode serializes hdr+body into a fresh buffer.
func Encode(h Header, body []byte) []byte {
	return AppendMessage(nil, h, body)
}

// AppendMessage serializes hdr+body onto dst and returns the extended
// slice. Hot paths that consume the encoding synchronously (the NIC copies
// it into a frame before returning) pass a per-component scratch buffer so
// the steady state allocates nothing.
//
//lhlint:hotpath
func AppendMessage(dst []byte, h Header, body []byte) []byte {
	if len(body) > 0xffff {
		panicBodyTooLarge(len(body))
	}
	h.BodyLen = uint16(len(body))
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	b := dst[off:]
	binary.BigEndian.PutUint16(b[0:2], Magic)
	b[2] = Version
	b[3] = h.Kind
	binary.BigEndian.PutUint32(b[4:8], h.Service)
	binary.BigEndian.PutUint16(b[8:10], h.Method)
	binary.BigEndian.PutUint16(b[10:12], h.Flags)
	binary.BigEndian.PutUint64(b[12:20], h.ID)
	binary.BigEndian.PutUint16(b[20:22], h.Status)
	binary.BigEndian.PutUint16(b[22:24], h.BodyLen)
	return append(dst, body...)
}

// panicBodyTooLarge keeps the fmt boxing of the oversize panic off
// AppendMessage's hot path; it never returns.
func panicBodyTooLarge(n int) {
	panic(fmt.Sprintf("rpc: body too large: %d", n))
}

// EncodeRequest builds a request message.
func EncodeRequest(service uint32, method uint16, id uint64, flags uint16, body []byte) []byte {
	return Encode(Header{Kind: KindRequest, Service: service, Method: method, ID: id, Flags: flags}, body)
}

// EncodeResponse builds a response message.
func EncodeResponse(service uint32, method uint16, id uint64, status uint16, body []byte) []byte {
	return Encode(Header{Kind: KindResponse, Service: service, Method: method, ID: id, Status: status}, body)
}

// Decode parses an RPC message. The returned body aliases b.
func Decode(b []byte) (*Message, error) {
	m := new(Message)
	if err := DecodeInto(b, m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses an RPC message into m, which the caller owns
// (typically a reusable staging slot, so steady-state receive paths
// allocate nothing). The body aliases b.
//
//lhlint:hotpath
func DecodeInto(b []byte, m *Message) error {
	if len(b) < HeaderLen {
		return ErrShort
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return ErrBadMagic
	}
	if b[2] != Version {
		return ErrBadVersion
	}
	m.Kind = b[3]
	if m.Kind != KindRequest && m.Kind != KindResponse {
		return ErrBadKind
	}
	m.Service = binary.BigEndian.Uint32(b[4:8])
	m.Method = binary.BigEndian.Uint16(b[8:10])
	m.Flags = binary.BigEndian.Uint16(b[10:12])
	m.ID = binary.BigEndian.Uint64(b[12:20])
	m.Status = binary.BigEndian.Uint16(b[20:22])
	m.BodyLen = binary.BigEndian.Uint16(b[22:24])
	if int(m.BodyLen) != len(b)-HeaderLen {
		// Tolerate trailing padding (Ethernet minimum frame) but not
		// truncation.
		if int(m.BodyLen) > len(b)-HeaderLen {
			return ErrBadBody
		}
	}
	m.Body = b[HeaderLen : HeaderLen+int(m.BodyLen)]
	return nil
}

// ArgWriter encodes a sequence of typed argument fields into a body.
// Fields are varint-length-delimited so the decoder can skip unknown data.
type ArgWriter struct {
	buf []byte
}

// NewArgWriter returns a writer with the given initial capacity.
func NewArgWriter(capacity int) *ArgWriter {
	return &ArgWriter{buf: make([]byte, 0, capacity)}
}

// PutUint64 appends an unsigned integer field.
func (w *ArgWriter) PutUint64(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// PutInt64 appends a signed integer field (zigzag).
func (w *ArgWriter) PutInt64(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// PutBytes appends a length-prefixed byte field.
func (w *ArgWriter) PutBytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// PutString appends a length-prefixed string field.
func (w *ArgWriter) PutString(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes returns the encoded body.
func (w *ArgWriter) Bytes() []byte { return w.buf }

// Len returns the encoded size so far.
func (w *ArgWriter) Len() int { return len(w.buf) }

// ArgReader decodes fields written by ArgWriter.
type ArgReader struct {
	buf []byte
	off int
	err error
}

// NewArgReader wraps a body for reading.
func NewArgReader(b []byte) *ArgReader { return &ArgReader{buf: b} }

// Err returns the first decoding error, if any.
func (r *ArgReader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *ArgReader) Remaining() int { return len(r.buf) - r.off }

func (r *ArgReader) fail() {
	if r.err == nil {
		r.err = ErrShort
	}
}

// Uint64 reads an unsigned integer field.
func (r *ArgReader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Int64 reads a signed integer field.
func (r *ArgReader) Int64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Bytes reads a length-prefixed byte field (aliasing the body).
func (r *ArgReader) Bytes() []byte {
	n := r.Uint64()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a length-prefixed string field.
func (r *ArgReader) String() string { return string(r.Bytes()) }
