package core

import (
	"strings"
	"testing"

	"lauberhorn/internal/sim"
	"lauberhorn/internal/trace"
)

func TestTelemetryCountsDispatchPaths(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	// First request: kernel dispatch. Later ones: fast path.
	for i := 0; i < 5; i++ {
		id := uint64(i + 1)
		client.send(t, 9000, 1, 1, id, []byte("x"))
		s.RunUntil(s.Now() + 2*sim.Millisecond)
	}
	tl := h.NIC.Telemetry(1)
	if tl == nil {
		t.Fatal("no telemetry for svc 1")
	}
	if tl.Arrivals != 5 {
		t.Errorf("arrivals %d", tl.Arrivals)
	}
	if tl.ViaKernel != 1 {
		t.Errorf("viaKernel %d, want 1", tl.ViaKernel)
	}
	if tl.Fast != 4 {
		t.Errorf("fast %d, want 4", tl.Fast)
	}
	if tl.Fast+tl.ViaKernel != tl.Arrivals {
		t.Errorf("dispatch paths %d+%d != arrivals %d", tl.Fast, tl.ViaKernel, tl.Arrivals)
	}
	if tl.QueueDelay.Count() != 5 {
		t.Errorf("queue-delay samples %d", tl.QueueDelay.Count())
	}
}

func TestTelemetryRateEstimate(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	// 100 requests at 10us spacing = 100 krps.
	for i := 0; i < 100; i++ {
		id := uint64(i + 1)
		at := s.Now() + sim.Time(i)*10*sim.Microsecond
		s.At(at, "send", func() { client.send(t, 9000, 1, 1, id, []byte("x")) })
	}
	s.RunUntil(s.Now() + 10*sim.Millisecond)
	tl := h.NIC.Telemetry(1)
	if tl.RateEWMA < 50_000 || tl.RateEWMA > 150_000 {
		t.Errorf("rate estimate %.0f/s, want ~100k", tl.RateEWMA)
	}
}

func TestTelemetryReportFormat(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	s.RunUntil(s.Now() + 5*sim.Millisecond)
	rep := h.NIC.TelemetryReport()
	for _, want := range []string{"svc 1", "arrivals=1", "qdelay"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTracerCapturesProtocolEvents(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	tr := trace.New(s, 256)
	tr.Enable()
	h.NIC.SetTracer(tr)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	client.send(t, 9000, 1, 1, 2, []byte("y"))
	s.RunUntil(20 * sim.Millisecond)

	if tr.Count(trace.RxFrame) != 2 {
		t.Errorf("rx events %d", tr.Count(trace.RxFrame))
	}
	if tr.Count(trace.TxFrame) != 2 {
		t.Errorf("tx events %d", tr.Count(trace.TxFrame))
	}
	if tr.Count(trace.Dispatch) != 2 {
		t.Errorf("dispatch events %d", tr.Count(trace.Dispatch))
	}
	// Idle long enough for a TryAgain to be traced.
	s.RunUntil(40 * sim.Millisecond)
	if tr.Count(trace.TryAgain) == 0 {
		t.Error("no TryAgain traced over idle period")
	}
	dump := tr.Dump(trace.Dispatch)
	if !strings.Contains(dump, "dispatch") {
		t.Errorf("dump:\n%s", dump)
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	tr := trace.New(s, 16)
	h.NIC.SetTracer(tr) // not enabled
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	s.RunUntil(10 * sim.Millisecond)
	if len(tr.Events()) != 0 {
		t.Fatal("disabled tracer recorded events")
	}
}
