package core

import (
	"testing"

	"lauberhorn/internal/kernel"
	"lauberhorn/internal/sim"
)

// TestNonRPCWorkGetsCorePromptly checks §5.2's core reallocation between
// RPC and non-RPC processes: a batch thread spawned while every core is
// parked in a Lauberhorn stall must run within microseconds (kick + yield),
// not wait out a 15 ms TryAgain period.
func TestNonRPCWorkGetsCorePromptly(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond) // worker parked on the kernel line

	var doneAt sim.Time
	spawnAt := s.Now()
	h.K.Spawn(h.K.NewProcess("batch"), "batch", func(tc *kernel.TC) {
		tc.RunUser(50*sim.Microsecond, func() {
			doneAt = tc.Now()
			tc.Exit()
		})
	})
	s.RunUntil(spawnAt + 5*sim.Millisecond)
	if doneAt == 0 {
		t.Fatal("batch thread never ran; stalled workers monopolize cores")
	}
	latency := doneAt - spawnAt - 50*sim.Microsecond
	if latency > 100*sim.Microsecond {
		t.Fatalf("batch scheduling latency %v; kick path not working", latency)
	}

	// The RPC service must still work after the batch thread exits.
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	s.RunUntil(s.Now() + 20*sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatal("RPC service broken after non-RPC interlude")
	}
}

// TestNonRPCWorkPrefersIdleUserPoller: with two cores — one parked in a
// busy service's user loop shortly to receive work, one idle on the
// kernel line — the kick must pick deterministically and both RPC and
// batch work complete.
func TestNonRPCAndRPCShareHost(t *testing.T) {
	s, h, client := lhRig(t, 2, sim.Microsecond)
	s.RunUntil(sim.Millisecond)

	// Sustained RPC load on one service.
	for i := 0; i < 50; i++ {
		id := uint64(i + 1)
		at := s.Now() + sim.Time(i)*20*sim.Microsecond
		s.At(at, "send", func() { client.send(t, 9000, 1, 1, id, []byte("r")) })
	}
	// Three batch threads arriving mid-load.
	batchDone := 0
	for b := 0; b < 3; b++ {
		at := s.Now() + sim.Time(100+b*200)*sim.Microsecond
		s.At(at, "spawn-batch", func() {
			h.K.Spawn(h.K.NewProcess("batch"), "batch", func(tc *kernel.TC) {
				tc.RunUser(30*sim.Microsecond, func() {
					batchDone++
					tc.Exit()
				})
			})
		})
	}
	s.RunUntil(s.Now() + 100*sim.Millisecond)
	if len(client.resps) != 50 {
		t.Fatalf("%d/50 RPCs served alongside batch work", len(client.resps))
	}
	if batchDone != 3 {
		t.Fatalf("%d/3 batch threads completed", batchDone)
	}
}
