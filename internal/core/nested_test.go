package core

import (
	"strings"
	"testing"

	"lauberhorn/internal/fabric"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

var (
	hostAEP = wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 0xA}, IP: wire.IP{10, 0, 0, 10}}
	hostBEP = wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 0xB}, IP: wire.IP{10, 0, 0, 11}}
)

// nestedRig builds: generator — switch — host A (frontend) — host B
// (backend). A's frontend handler makes a nested call to B's backend and
// wraps the result.
func nestedRig(t *testing.T) (*sim.Sim, *Host, *Host, *testClient) {
	t.Helper()
	s := sim.New(77)
	sw := fabric.NewSwitch(s)

	attach := func(p fabric.FramePort) *fabric.Link {
		l := fabric.NewLink(s, fabric.Net100G)
		port := sw.AttachPort(l, 1)
		l.Attach(p, port)
		return l
	}

	client := &testClient{s: s, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	client.link = attach(client)

	hostA := NewHost(s, DefaultHostConfig(hostAEP, 1))
	hostA.NIC.AttachLink(attach(hostA.NIC), 0)
	hostB := NewHost(s, DefaultHostConfig(hostBEP, 1))
	hostB.NIC.AttachLink(attach(hostB.NIC), 0)
	hostA.NIC.AddARP(hostBEP.IP, hostBEP.MAC)

	// Backend on B: echo with a prefix.
	hostB.RegisterService(&rpc.ServiceDesc{ID: 20, Name: "backend", Methods: []rpc.MethodDesc{{
		ID: 1, Name: "lookup",
		Handler: func(req []byte) ([]byte, sim.Time) {
			return append([]byte("B:"), req...), 500 * sim.Nanosecond
		},
	}}}, 9100, 0)
	hostB.Start()

	// Frontend on A: async handler calls the backend, wraps the reply.
	hostA.RegisterService(&rpc.ServiceDesc{ID: 10, Name: "frontend", Methods: []rpc.MethodDesc{{
		ID: 1, Name: "get",
		Handler: func(req []byte) ([]byte, sim.Time) { panic("async handler must be used") },
	}}}, 9000, 0)
	hostA.SetAsyncHandler(10, 1, func(tc *kernel.TC, coreID int, req []byte, respond func(uint16, []byte)) {
		tc.RunUser(300*sim.Nanosecond, func() { // frontend pre-processing
			ch := hostA.ClientChanFor(coreID)
			dst := hostBEP
			dst.Port = 9100
			hostA.Call(tc, ch, 20, 1, dst, req, func(status uint16, resp []byte) {
				tc.RunUser(200*sim.Nanosecond, func() { // post-processing
					respond(rpc.StatusOK, append([]byte("A:"), resp...))
				})
			})
		})
	})
	hostA.Start()
	return s, hostA, hostB, client
}

// sendTo lets the test client target an arbitrary host endpoint.
func (c *testClient) sendNested(t *testing.T, dst wire.Endpoint, svc uint32, id uint64, body []byte) {
	t.Helper()
	req := rpc.EncodeRequest(svc, 1, id, 0, body)
	frame, err := wire.BuildUDP(clientEP, dst, uint16(id), req)
	if err != nil {
		t.Fatal(err)
	}
	c.sentAt[id] = c.s.Now()
	c.link.Send(0, frame)
}

func TestNestedRPCEndToEnd(t *testing.T) {
	s, hostA, hostB, client := nestedRig(t)
	s.RunUntil(sim.Millisecond)
	dst := hostAEP
	dst.Port = 9000
	client.sendNested(t, dst, 10, 1, []byte("q"))
	s.RunUntil(50 * sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatalf("%d responses", len(client.resps))
	}
	if got := string(client.resps[0].Body); got != "A:B:q" {
		t.Fatalf("nested response %q, want A:B:q", got)
	}
	if hostA.NIC.Stats().ClientReqs != 1 || hostA.NIC.Stats().ClientResps != 1 {
		t.Errorf("client stats %+v", hostA.NIC.Stats())
	}
	if hostB.Served(20) != 1 {
		t.Errorf("backend served %d", hostB.Served(20))
	}
	// Plausibility: nested RTT is a handful of microseconds, not a
	// TryAgain period.
	if rtt := client.rtts[1]; rtt > 30*sim.Microsecond || rtt < 4*sim.Microsecond {
		t.Errorf("nested RTT %v implausible", rtt)
	}
}

func TestNestedRPCSequence(t *testing.T) {
	s, hostA, hostB, client := nestedRig(t)
	s.RunUntil(sim.Millisecond)
	dst := hostAEP
	dst.Port = 9000
	const n = 20
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		at := s.Now() + sim.Time(i)*30*sim.Microsecond
		s.At(at, "send", func() {
			client.sendNested(t, dst, 10, 1, []byte{byte(id)})
		})
	}
	s.RunUntil(sim.Second)
	if len(client.resps) != n {
		t.Fatalf("%d/%d nested responses", len(client.resps), n)
	}
	for _, m := range client.resps {
		if !strings.HasPrefix(string(m.Body), "A:B:") {
			t.Fatalf("bad body %q", m.Body)
		}
	}
	if hostB.Served(20) != n {
		t.Errorf("backend served %d", hostB.Served(20))
	}
	if hostA.NIC.Stats().ClientReqs != n {
		t.Errorf("client reqs %d", hostA.NIC.Stats().ClientReqs)
	}
}

func TestNestedRPCWarmLatencyBreakdown(t *testing.T) {
	// Direct call to B must be cheaper than via the frontend, and the
	// nesting overhead must be roughly one extra hop + dispatch, not a
	// full scheduler quantum.
	s, _, _, client := nestedRig(t)
	s.RunUntil(sim.Millisecond)

	dstA := hostAEP
	dstA.Port = 9000
	dstB := hostBEP
	dstB.Port = 9100

	// Warm both paths.
	client.sendNested(t, dstA, 10, 1, []byte("w"))
	s.RunUntil(20 * sim.Millisecond)
	client.sendNested(t, dstB, 20, 2, []byte("w"))
	s.RunUntil(40 * sim.Millisecond)

	client.sendNested(t, dstB, 20, 3, []byte("m"))
	s.RunUntil(60 * sim.Millisecond)
	client.sendNested(t, dstA, 10, 4, []byte("m"))
	s.RunUntil(90 * sim.Millisecond)

	direct := client.rtts[3]
	nested := client.rtts[4]
	if direct == 0 || nested == 0 {
		t.Fatal("missing RTTs")
	}
	if nested <= direct {
		t.Fatalf("nested %v not above direct %v", nested, direct)
	}
	overhead := nested - direct
	if overhead > 15*sim.Microsecond {
		t.Errorf("nesting overhead %v; continuation should be cheap (§6)", overhead)
	}
	t.Logf("direct=%v nested=%v overhead=%v", direct, nested, overhead)
}

func TestClientChanCoreAffinity(t *testing.T) {
	s, hostA, _, _ := nestedRig(t)
	s.RunUntil(sim.Millisecond)
	ch := hostA.OpenClientChan(0)
	// Calling from a thread on another core must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("cross-core Call did not panic")
		}
	}()
	// Fabricate a TC on a different core via a throwaway thread.
	done := false
	hostA.K.Preempt(hostA.Worker(0))
	hostA.NIC.Kick(0)
	s.RunUntil(2 * sim.Millisecond)
	_ = done
	// Directly misuse the API: channel bound to core 0, thread core -1.
	fakeCh := &ClientChan{id: ch.id, coreID: 99}
	hostA.Call(nil2(), fakeCh, 20, 1, hostBEP, nil, func(uint16, []byte) {})
}

// nil2 builds an invalid TC for the misuse test.
func nil2() *kernel.TC { return &kernel.TC{} }
