package core

import (
	"encoding/binary"
	"fmt"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/mesi"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

// This file implements outbound RPC through Lauberhorn: the transmit-path
// twin of the Fig. 4 receive protocol, and the §6 "dedicated end-point for
// an RPC reply" that makes nested RPCs cheap.
//
// A client channel is a pair of NIC-homed control lines owned by one core.
// To issue a call, the CPU stores the request (destination, method, args)
// into one line and loads the other; the NIC sees the load, fetches the
// request line exclusive, transmits the request frame, and defers the load
// until the response arrives — whereupon the stalled load returns the
// response body directly. TryAgain dummies bound the stall as on the
// receive path.

// clientCall tracks one outbound RPC between transmit and response.
type clientCall struct {
	serial uint64
	chanID uint32
	status uint16
	body   []byte
	done   bool // response received
}

// clientChanNIC is the NIC-side state of a client channel.
type clientChanNIC struct {
	id     uint32
	coreID int
	// outstanding is the in-flight call, nil between calls.
	outstanding *clientCall
}

// parseClientRespLine decodes a client-channel answer line. ok is false
// for non-response markers (e.g. TryAgain).
func parseClientRespLine(l []byte) (parsedResponse, bool) {
	if len(l) < respHeaderLen || l[0] != MarkerClientResp {
		return parsedResponse{}, false
	}
	p := parsedResponse{
		Status:  binary.BigEndian.Uint16(l[1:3]),
		BodyLen: int(binary.BigEndian.Uint16(l[3:5])),
		Serial:  binary.BigEndian.Uint64(l[5:13]),
	}
	n := p.BodyLen
	if max := len(l) - respHeaderLen; n > max {
		n = max
	}
	p.Inline = l[respHeaderLen : respHeaderLen+n]
	return p, true
}

// OpenClientChannel allocates a client channel for a core and returns its
// ID. The OS does this once per (process, core) that issues outbound RPCs.
func (n *NIC) OpenClientChannel(coreID int) uint32 {
	n.nextChanID++
	id := n.nextChanID
	n.clientChans[id] = &clientChanNIC{id: id, coreID: coreID}
	return id
}

// clientReadLine handles a CPU load on a client-channel line: transmit
// the paired request if one is staged, then answer with the response or
// defer.
func (n *NIC) clientReadLine(addr mesi.LineAddr, chanID uint32, coreID, idx int, respond func([]byte)) {
	ch := n.clientChans[chanID]
	if ch == nil {
		respond(markerLine(nil, n.lineSize(), MarkerTryAgain))
		return
	}
	pair := clientCtrl(chanID, coreID, 1-idx)
	if _, staged := n.clientStaged[pair]; staged {
		delete(n.clientStaged, pair)
		n.dir.Recall(pair, func(data []byte) {
			req, ok := parseClientReqLine(data)
			if !ok {
				// The CPU never finished writing the request; answer
				// TryAgain so the core can recover.
				respond(markerLine(nil, n.lineSize(), MarkerTryAgain))
				return
			}
			n.transmitClientReq(ch, req)
			n.answerClientLoad(addr, ch, coreID, respond)
		})
		return
	}
	n.answerClientLoad(addr, ch, coreID, respond)
}

// answerClientLoad completes a client-channel load from a buffered
// response, or defers it.
func (n *NIC) answerClientLoad(addr mesi.LineAddr, ch *clientChanNIC, coreID int, respond func([]byte)) {
	if c := ch.outstanding; c != nil && c.done {
		ch.outstanding = nil
		line, inline := clientRespLine(n.lineSize(), c.status, c.serial, c.body)
		if inline < len(c.body) {
			n.clientAuxIn[c.serial] = c.body[inline:]
		}
		n.stats.ClientResps++
		respond(line)
		return
	}
	n.defer_(addr, coreID, 0, false, respond)
}

// transmitClientReq builds and sends an outbound request frame.
func (n *NIC) transmitClientReq(ch *clientChanNIC, req parsedClientReq) {
	body := req.Inline
	if aux, ok := n.clientAuxOut[req.Serial]; ok {
		full := make([]byte, 0, req.BodyLen)
		full = append(full, req.Inline...)
		full = append(full, aux...)
		body = full
		delete(n.clientAuxOut, req.Serial)
	}
	if len(body) > req.BodyLen {
		body = body[:req.BodyLen]
	}
	call := &clientCall{serial: req.Serial, chanID: ch.id}
	ch.outstanding = call
	n.clientCalls[req.Serial] = call
	n.stats.ClientReqs++
	dst := wire.Endpoint{MAC: wire.BroadcastMAC, IP: req.DstIP, Port: req.DstPort}
	if mac, ok := n.arp[req.DstIP]; ok {
		dst.MAC = mac
	}
	// Encode into the reused scratch: txRPC copies the payload into the
	// frame before returning.
	n.encScr = rpc.AppendMessage(n.encScr[:0],
		rpc.Header{Kind: rpc.KindRequest, Service: req.Svc, Method: req.Method, ID: req.Serial}, body)
	n.txRPC(dst, n.encScr)
}

// AddARP installs a static IP→MAC mapping for outbound calls (the control
// plane would normally resolve this).
func (n *NIC) AddARP(ip wire.IP, mac wire.MAC) { n.arp[ip] = mac }

// deliverClientResponse routes an inbound RPC response to its waiting
// client channel.
func (n *NIC) deliverClientResponse(msg *rpc.Message) {
	call, ok := n.clientCalls[msg.ID]
	if !ok {
		n.stats.RxBad++
		return
	}
	delete(n.clientCalls, msg.ID)
	call.status = msg.Status
	call.body = append([]byte(nil), msg.Body...)
	call.done = true
	ch := n.clientChans[call.chanID]
	// If the core is already stalled on the channel, answer now.
	if p := n.pendingOn(ch.coreID); p != nil {
		region, chID, _, _ := splitAddr(p.addr)
		if region == regionClient && chID == ch.id {
			n.removePending(p)
			n.answerClientLoad(p.addr, ch, ch.coreID, p.respond)
		}
	}
}

// ClientAuxIn returns response-body bytes beyond the inline chunk for a
// completed call.
func (n *NIC) ClientAuxIn(serial uint64) []byte {
	b := n.clientAuxIn[serial]
	delete(n.clientAuxIn, serial)
	return b
}

// WriteClientAux stages request-body bytes beyond the inline chunk (the
// CPU's stores to the channel's aux lines).
func (n *NIC) WriteClientAux(serial uint64, rest []byte) {
	cp := make([]byte, len(rest))
	copy(cp, rest)
	n.clientAuxOut[serial] = cp
}

// markStaged records that the CPU wrote a request into a client line; the
// NIC transmits it when the paired line is loaded.
func (n *NIC) markStaged(addr mesi.LineAddr) { n.clientStaged[addr] = struct{}{} }

// ---- host side ----

// ClientChan is the host handle for a client channel.
type ClientChan struct {
	id     uint32
	coreID int
	cur    int
	serial uint64
}

// OpenClientChan allocates a client channel bound to a core.
func (h *Host) OpenClientChan(coreID int) *ClientChan {
	return &ClientChan{id: h.NIC.OpenClientChannel(coreID), coreID: coreID}
}

// ClientChanFor returns (allocating lazily) the per-core client channel
// async handlers use for nested calls.
func (h *Host) ClientChanFor(coreID int) *ClientChan {
	if h.clientChans[coreID] == nil {
		h.clientChans[coreID] = h.OpenClientChan(coreID)
	}
	return h.clientChans[coreID]
}

// Call issues a synchronous outbound RPC through the channel: store the
// request into one control line, load the other, and stall until the
// response (or retry on TryAgain). then receives the response status and
// body. The calling thread must be running on the channel's core.
func (h *Host) Call(tc *kernel.TC, ch *ClientChan, svc uint32, method uint16,
	dst wire.Endpoint, body []byte, then func(status uint16, resp []byte)) {
	if tc.Thread().Core() != ch.coreID {
		panic(fmt.Sprintf("core: Call on core %d via channel bound to core %d",
			tc.Thread().Core(), ch.coreID))
	}
	h.nextCallSerial++
	serial := h.nextCallSerial
	reqAddr := clientCtrl(ch.id, ch.coreID, ch.cur)
	respAddr := clientCtrl(ch.id, ch.coreID, 1-ch.cur)
	ch.cur = 1 - ch.cur

	line, inline := clientReqLine(h.NIC.lineSize(), svc, method, serial, dst.IP, dst.Port, body)
	var auxCost sim.Time
	if inline < len(body) {
		h.NIC.WriteClientAux(serial, body[inline:])
		auxCost = sim.Time(h.NIC.AuxLines(len(body))) * h.cfg.NIC.Fabric.PerLineStream
	}
	cache := h.caches[ch.coreID]

	var await func()
	await = func() {
		cache.Evict(respAddr, nil)
		var respLine []byte
		tc.StallOn(func(complete func()) {
			cache.Load(respAddr, func(data []byte) { respLine = data; complete() })
		}, func() {
			if pr, ok := parseClientRespLine(respLine); ok {
				respBody := pr.Inline
				var tail sim.Time
				if pr.BodyLen > len(pr.Inline) {
					aux := h.NIC.ClientAuxIn(pr.Serial)
					full := make([]byte, 0, pr.BodyLen)
					full = append(full, pr.Inline...)
					full = append(full, aux...)
					respBody = full
					tail = sim.Time(h.NIC.AuxLines(pr.BodyLen)) * h.cfg.NIC.Fabric.PerLineStream
				}
				finish := func() { then(pr.Status, respBody) }
				if tail > 0 {
					tc.StallOn(func(complete func()) {
						tc.Sim().After(tail, "lh-client-aux", complete)
					}, finish)
				} else {
					finish()
				}
				return
			}
			// TryAgain: re-issue the load (the response is still coming).
			tc.Run(h.cfg.LoopOverhead, cpu.User, await)
		})
	}
	store := func() {
		tc.StallOn(func(complete func()) {
			cache.Store(reqAddr, line, complete)
		}, func() {
			h.NIC.markStaged(reqAddr)
			tc.Run(h.cfg.LoopOverhead, cpu.User, await)
		})
	}
	if auxCost > 0 {
		tc.Run(auxCost, cpu.User, store)
	} else {
		store()
	}
}
