package core

import (
	"bytes"
	"testing"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/fabric"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

var (
	serverEP = wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 2}, IP: wire.IP{10, 0, 0, 2}, Port: 0}
	clientEP = wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 1}, IP: wire.IP{10, 0, 0, 1}, Port: 5555}
)

type testClient struct {
	s      *sim.Sim
	link   *fabric.Link
	sentAt map[uint64]sim.Time
	rtts   map[uint64]sim.Time
	resps  []*rpc.Message
}

func (c *testClient) DeliverFrame(frame []byte) {
	d, err := wire.ParseUDP(frame)
	if err != nil {
		return
	}
	m, err := rpc.Decode(d.Payload)
	if err != nil || m.IsRequest() {
		// Ignore requests (switched fabrics may flood them to us).
		return
	}
	c.resps = append(c.resps, m)
	if t0, ok := c.sentAt[m.ID]; ok {
		c.rtts[m.ID] = c.s.Now() - t0
	}
}

func (c *testClient) send(t *testing.T, port uint16, svc uint32, method uint16, id uint64, body []byte) {
	t.Helper()
	req := rpc.EncodeRequest(svc, method, id, 0, body)
	dst := serverEP
	dst.Port = port
	frame, err := wire.BuildUDP(clientEP, dst, uint16(id), req)
	if err != nil {
		t.Fatal(err)
	}
	c.sentAt[id] = c.s.Now()
	c.link.Send(0, frame)
}

// lhRig builds a Lauberhorn host with nCores cores and one echo service,
// plus a raw client on the other end of the link.
func lhRig(t *testing.T, nCores int, serviceTime sim.Time) (*sim.Sim, *Host, *testClient) {
	t.Helper()
	s := sim.New(21)
	h := NewHost(s, DefaultHostConfig(serverEP, nCores))
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, h.NIC)
	h.NIC.AttachLink(link, 1)

	h.RegisterService(&rpc.ServiceDesc{ID: 1, Name: "echo", Methods: []rpc.MethodDesc{{
		ID: 1, Name: "echo", CodeAddr: 0x400000, DataAddr: 0x800000,
		Handler: func(req []byte) ([]byte, sim.Time) { return req, serviceTime },
	}}}, 9000, 0)
	h.Start()
	return s, h, client
}

func TestFirstRequestViaKernelLoop(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond) // let the worker reach its kernel-line stall
	client.send(t, 9000, 1, 1, 1, []byte("hello"))
	s.RunUntil(10 * sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatalf("%d responses", len(client.resps))
	}
	if string(client.resps[0].Body) != "hello" {
		t.Fatalf("body %q", client.resps[0].Body)
	}
	if h.NIC.Stats().KernDispatch != 1 {
		t.Errorf("kernel dispatches %d, want 1", h.NIC.Stats().KernDispatch)
	}
	if h.Served(1) != 1 {
		t.Errorf("served %d", h.Served(1))
	}
}

func TestWarmRequestsUseFastPath(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("a"))
	s.RunUntil(5 * sim.Millisecond)
	// Worker is now parked in the echo service's user loop: subsequent
	// requests dispatch straight into the stalled load.
	client.send(t, 9000, 1, 1, 2, []byte("b"))
	s.RunUntil(10 * sim.Millisecond)
	if len(client.resps) != 2 {
		t.Fatalf("%d responses", len(client.resps))
	}
	st := h.NIC.Stats()
	if st.FastDispatch != 1 {
		t.Errorf("fast dispatches %d, want 1", st.FastDispatch)
	}
	// Warm-path RTT must beat the cold one.
	if client.rtts[2] >= client.rtts[1] {
		t.Errorf("warm RTT %v not below cold RTT %v", client.rtts[2], client.rtts[1])
	}
}

func TestWarmRTTBeatsBypassBallpark(t *testing.T) {
	s, _, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("warm"))
	s.RunUntil(5 * sim.Millisecond)
	client.send(t, 9000, 1, 1, 2, make([]byte, 40))
	s.RunUntil(10 * sim.Millisecond)
	rtt := client.rtts[2]
	// The paper's claim: better than kernel bypass (~4-5us in our bypass
	// model). Must be low single-digit microseconds.
	if rtt > 4*sim.Microsecond {
		t.Errorf("Lauberhorn warm RTT %v, want < 4us", rtt)
	}
	if rtt < sim.Microsecond {
		t.Errorf("Lauberhorn warm RTT %v implausibly low", rtt)
	}
}

func TestEchoPayloadIntegrity(t *testing.T) {
	s, _, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	payload := make([]byte, 300) // forces aux lines both ways (128B lines)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	client.send(t, 9000, 1, 1, 1, payload)
	s.RunUntil(20 * sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatalf("%d responses", len(client.resps))
	}
	if !bytes.Equal(client.resps[0].Body, payload) {
		t.Fatal("large payload corrupted through aux lines")
	}
}

func TestIdleWorkerStallsNotSpins(t *testing.T) {
	s, h, _ := lhRig(t, 1, 0)
	s.RunUntil(10 * sim.Millisecond)
	c := h.K.CPU(0)
	if c.State() != cpu.Stall {
		t.Fatalf("idle Lauberhorn core in %v, want stall", c.State())
	}
	if c.Residency(cpu.Stall) < 9*sim.Millisecond {
		t.Errorf("stall residency %v over 10ms idle", c.Residency(cpu.Stall))
	}
	if c.Residency(cpu.Spin) != 0 {
		t.Errorf("Lauberhorn core spun for %v", c.Residency(cpu.Spin))
	}
}

func TestTryAgainAfterTimeout(t *testing.T) {
	s, h, _ := lhRig(t, 1, 0)
	// The kernel loop stalls at boot; after 15ms the NIC must answer
	// TryAgain, and the loop re-polls.
	s.RunUntil(50 * sim.Millisecond)
	st := h.NIC.Stats()
	if st.TryAgains < 2 || st.TryAgains > 4 {
		t.Errorf("TryAgains %d over 50ms idle, want ~3 (15ms period)", st.TryAgains)
	}
	// No bus error: the mesi watchdog (50ms) never fired because
	// TryAgain bounds every deferral.
}

func TestTryAgainPreventsBusError(t *testing.T) {
	// The mesi watchdog (DeferTimeout 50ms) panics on an over-long
	// deferral; running 200ms idle proves TryAgain bounds every stall.
	s, _, _ := lhRig(t, 1, 0)
	s.RunUntil(200 * sim.Millisecond)
}

func TestNoSuchMethodAnsweredByNIC(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 99, 5, nil)
	s.RunUntil(10 * sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatal("no error response")
	}
	if client.resps[0].Status != rpc.StatusNoSuchMethod {
		t.Errorf("status %d", client.resps[0].Status)
	}
	// Zero host involvement: no dispatches at all.
	st := h.NIC.Stats()
	if st.FastDispatch+st.KernDispatch != 0 {
		t.Error("host was involved in a NIC-answerable error")
	}
}

func TestBadFramesCounted(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	frame, _ := wire.BuildUDP(clientEP, wire.Endpoint{MAC: serverEP.MAC, IP: serverEP.IP, Port: 9000}, 1, []byte("not-rpc"))
	client.link.Send(0, frame)
	// Unknown port too.
	req := rpc.EncodeRequest(1, 1, 9, 0, nil)
	frame2, _ := wire.BuildUDP(clientEP, wire.Endpoint{MAC: serverEP.MAC, IP: serverEP.IP, Port: 1}, 2, req)
	client.link.Send(0, frame2)
	s.RunUntil(10 * sim.Millisecond)
	if h.NIC.Stats().RxBad != 2 {
		t.Errorf("RxBad %d, want 2", h.NIC.Stats().RxBad)
	}
}

func TestSchedStatePushedOnSwitches(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	before := h.NIC.SchedPushes()
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	s.RunUntil(10 * sim.Millisecond)
	if h.NIC.SchedPushes() <= before {
		t.Error("no scheduler-state pushes on process switch")
	}
}

func TestTwoServicesCoreReallocation(t *testing.T) {
	// One core, two services: after svc1 warms up and parks, a request
	// for svc2 must reclaim the core (retire) and be served.
	s := sim.New(21)
	h := NewHost(s, DefaultHostConfig(serverEP, 1))
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, h.NIC)
	h.NIC.AttachLink(link, 1)
	for i := uint32(1); i <= 2; i++ {
		h.RegisterService(&rpc.ServiceDesc{ID: i, Name: "svc", Methods: []rpc.MethodDesc{{
			ID: 1, Handler: func(req []byte) ([]byte, sim.Time) { return req, 0 },
		}}}, 9000+uint16(i), 0)
	}
	h.Start()
	s.RunUntil(sim.Millisecond)

	client.send(t, 9001, 1, 1, 1, []byte("a"))
	s.RunUntil(5 * sim.Millisecond)
	if h.Served(1) != 1 {
		t.Fatal("svc1 not served")
	}
	// Core now parked in svc1's user loop.
	client.send(t, 9002, 2, 1, 2, []byte("b"))
	s.RunUntil(20 * sim.Millisecond)
	if h.Served(2) != 1 {
		t.Fatalf("svc2 not served after core reallocation (retires=%d)", h.NIC.Stats().Retires)
	}
	if h.NIC.Stats().Retires == 0 {
		t.Error("no retire recorded")
	}
	// svc2's latency must be far below a 15ms TryAgain wait.
	if client.rtts[2] > 2*sim.Millisecond {
		t.Errorf("svc2 RTT %v; reallocation too slow", client.rtts[2])
	}
}

func TestDeschedule(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	s.RunUntil(5 * sim.Millisecond)
	// Worker is stalled in svc1's user loop. Deschedule the core.
	tryBefore := h.NIC.Stats().TryAgains
	h.Deschedule(0)
	s.RunUntil(6 * sim.Millisecond)
	if h.NIC.Stats().TryAgains != tryBefore+1 {
		t.Error("kick did not TryAgain the stalled load")
	}
	// The worker must still serve later requests (it returned to the
	// kernel loop).
	client.send(t, 9000, 1, 1, 2, []byte("y"))
	s.RunUntil(30 * sim.Millisecond)
	if len(client.resps) != 2 {
		t.Fatalf("%d responses after deschedule", len(client.resps))
	}
}

func TestManyRequestsTwoCores(t *testing.T) {
	s, h, client := lhRig(t, 2, sim.Microsecond)
	s.RunUntil(sim.Millisecond)
	const n = 64
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		at := s.Now() + sim.Time(i)*3*sim.Microsecond
		s.At(at, "send", func() { client.send(t, 9000, 1, 1, id, []byte("x")) })
	}
	s.RunUntil(sim.Second)
	if len(client.resps) != n {
		t.Fatalf("%d/%d responses", len(client.resps), n)
	}
	if h.Served(1) != n {
		t.Errorf("served %d", h.Served(1))
	}
}

func TestZeroSyscallsOnWarmPath(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, []byte("x"))
	s.RunUntil(5 * sim.Millisecond)
	base := h.K.Stats().Syscalls
	for i := 0; i < 10; i++ {
		id := uint64(100 + i)
		client.send(t, 9000, 1, 1, id, []byte("x"))
		s.RunUntil(s.Now() + 100*sim.Microsecond)
	}
	if h.K.Stats().Syscalls != base {
		t.Errorf("warm path made %d syscalls", h.K.Stats().Syscalls-base)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		s, _, client := lhRig(t, 2, sim.Microsecond)
		s.RunUntil(sim.Millisecond)
		for i := 0; i < 20; i++ {
			id := uint64(i + 1)
			at := s.Now() + sim.Time(i*7)*sim.Microsecond
			s.At(at, "send", func() { client.send(t, 9000, 1, 1, id, []byte("x")) })
		}
		s.RunUntil(sim.Second)
		out := make([]sim.Time, 0, len(client.rtts))
		for i := uint64(1); i <= 20; i++ {
			out = append(out, client.rtts[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLineCodecs(t *testing.T) {
	body := []byte("abcdef")
	l, inline := dispatchLine(nil, 128, MarkerDispatch, 7, 3, 99, 0x1000, 0x2000, body)
	if inline != len(body) {
		t.Fatalf("inline %d", inline)
	}
	p := parseDispatchLine(l)
	if p.Marker != MarkerDispatch || p.Svc != 7 || p.Method != 3 || p.Serial != 99 ||
		p.Code != 0x1000 || p.Data != 0x2000 || string(p.Inline) != "abcdef" {
		t.Fatalf("parsed %+v", p)
	}

	rl, rInline := responseLine(nil, 128, rpc.StatusOK, 99, body)
	if rInline != len(body) {
		t.Fatalf("resp inline %d", rInline)
	}
	pr, ok := parseResponseLine(rl)
	if !ok || pr.Status != rpc.StatusOK || pr.Serial != 99 || string(pr.Inline) != "abcdef" {
		t.Fatalf("parsed resp %+v ok=%v", pr, ok)
	}
	if _, ok := parseResponseLine(markerLine(nil, 128, MarkerTryAgain)); ok {
		t.Fatal("TryAgain line parsed as response")
	}
}

func TestLineAddrScheme(t *testing.T) {
	a := svcCtrl(0xabcd, 7, 1)
	region, svc, coreID, idx := splitAddr(a)
	if region != regionService || svc != 0xabcd || coreID != 7 || idx != 1 {
		t.Fatalf("split: %d %d %d %d", region, svc, coreID, idx)
	}
	k := kernelCtrl(3, 0)
	region, svc, coreID, idx = splitAddr(k)
	if region != regionKernel || svc != 0 || coreID != 3 || idx != 0 {
		t.Fatalf("split kernel: %d %d %d %d", region, svc, coreID, idx)
	}
	if svcCtrl(1, 0, 0) == svcCtrl(2, 0, 0) || kernelCtrl(0, 0) == svcCtrl(0, 0, 0) {
		t.Fatal("address collision")
	}
}

func TestInlineBodyTruncationBoundary(t *testing.T) {
	// Body exactly at the inline capacity.
	cap := 128 - dispatchHeaderLen
	body := make([]byte, cap)
	_, inline := dispatchLine(nil, 128, MarkerDispatch, 1, 1, 1, 0, 0, body)
	if inline != cap {
		t.Fatalf("inline %d, want %d", inline, cap)
	}
	// One byte over: inline caps out.
	body = make([]byte, cap+1)
	_, inline = dispatchLine(nil, 128, MarkerDispatch, 1, 1, 1, 0, 0, body)
	if inline != cap {
		t.Fatalf("inline %d, want %d", inline, cap)
	}
}
