package core

import (
	"bytes"
	"testing"

	"lauberhorn/internal/fabric"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
	"lauberhorn/internal/workload"
)

// dmaRig builds a 1-core echo host with a configurable DMA threshold.
func dmaRig(t *testing.T, threshold int) (*sim.Sim, *Host, *testClient) {
	t.Helper()
	s := sim.New(31)
	cfg := DefaultHostConfig(serverEP, 1)
	cfg.NIC.DMAThreshold = threshold
	h := NewHost(s, cfg)
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, h.NIC)
	h.NIC.AttachLink(link, 1)
	h.RegisterService(&rpc.ServiceDesc{ID: 1, Name: "echo", Methods: []rpc.MethodDesc{{
		ID: 1, Name: "echo",
		Handler: func(req []byte) ([]byte, sim.Time) { return req, 0 },
	}}}, 9000, 0)
	h.Start()
	return s, h, client
}

func TestDMAFallbackPayloadIntegrity(t *testing.T) {
	s, _, client := dmaRig(t, 4096)
	s.RunUntil(sim.Millisecond)
	payload := make([]byte, 8000)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	client.send(t, 9000, 1, 1, 1, payload)
	s.RunUntil(30 * sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatalf("%d responses", len(client.resps))
	}
	if !bytes.Equal(client.resps[0].Body, payload) {
		t.Fatal("8KB payload corrupted through DMA path")
	}
}

func TestDMAFallbackOnlyAboveThreshold(t *testing.T) {
	s, h, client := dmaRig(t, 4096)
	s.RunUntil(sim.Millisecond)
	client.send(t, 9000, 1, 1, 1, make([]byte, 1000)) // below: aux lines
	s.RunUntil(10 * sim.Millisecond)
	client.send(t, 9000, 1, 1, 2, make([]byte, 6000)) // above: DMA
	s.RunUntil(30 * sim.Millisecond)
	if len(client.resps) != 2 {
		t.Fatalf("%d responses", len(client.resps))
	}
	_ = h
}

func TestDMAFallbackFasterForLargeMessages(t *testing.T) {
	const size = 8000
	rtt := func(threshold int) sim.Time {
		s, _, client := dmaRig(t, threshold)
		s.RunUntil(sim.Millisecond)
		client.send(t, 9000, 1, 1, 1, make([]byte, size)) // warm
		s.RunUntil(20 * sim.Millisecond)
		client.send(t, 9000, 1, 1, 2, make([]byte, size))
		s.RunUntil(40 * sim.Millisecond)
		return client.rtts[2]
	}
	pure := rtt(0)
	hybrid := rtt(4096)
	if hybrid >= pure {
		t.Fatalf("hybrid %v not faster than cache-line %v at %dB", hybrid, pure, size)
	}
}

func TestDMAFallbackSameLatencySmall(t *testing.T) {
	const size = 300
	rtt := func(threshold int) sim.Time {
		s, _, client := dmaRig(t, threshold)
		s.RunUntil(sim.Millisecond)
		client.send(t, 9000, 1, 1, 1, make([]byte, size))
		s.RunUntil(20 * sim.Millisecond)
		client.send(t, 9000, 1, 1, 2, make([]byte, size))
		s.RunUntil(40 * sim.Millisecond)
		return client.rtts[2]
	}
	if a, b := rtt(0), rtt(4096); a != b {
		t.Fatalf("small-message latency differs with fallback enabled: %v vs %v", a, b)
	}
}

func TestDMAConfigValidation(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig(serverEP)
	cfg.DMAThreshold = 1024
	cfg.DMA = fabric.ECI // no DMA engine
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for DMA threshold without DMA fabric")
		}
	}()
	NewNIC(s, cfg, 1)
}

func TestJumboFramesCarryLargeBodies(t *testing.T) {
	// The wire layer must carry an 8KB RPC in one frame (jumbo MTU).
	body := make([]byte, 8000)
	req := rpc.EncodeRequest(1, 1, 1, 0, body)
	f, err := wire.BuildUDP(
		wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 1}, IP: wire.IP{10, 0, 0, 1}, Port: 1},
		wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 2}, IP: wire.IP{10, 0, 0, 2}, Port: 2},
		1, req)
	if err != nil {
		t.Fatal(err)
	}
	d, err := wire.ParseUDP(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rpc.Decode(d.Payload)
	if err != nil || len(m.Body) != 8000 {
		t.Fatalf("decode: %v, body %d", err, len(m.Body))
	}
	_ = workload.CloudRPC() // keep import for future size-mix DMA tests
}
