package core

import (
	"testing"

	"lauberhorn/internal/kernel"
	"lauberhorn/internal/sim"
)

// TestNoResponseStrandedUnderPreemption provokes the deschedule race the
// handoff model surfaced: with an unpinned CPU-bound competitor and a
// short quantum, the worker's preempt-pending flag is regularly raised
// while it stalls on the response-store upgrade; the subsequent yield
// must flush the parked response rather than strand it. Every request
// must still receive its response.
func TestNoResponseStrandedUnderPreemption(t *testing.T) {
	s, h, client := lhRig(t, 1, 2*sim.Microsecond)
	h.K.Costs.Quantum = 30 * sim.Microsecond

	// A CPU-bound competitor that keeps the run queue non-empty so the
	// quantum timer fires against the worker.
	var hog func(tc *kernel.TC)
	hog = func(tc *kernel.TC) {
		tc.RunUser(20*sim.Microsecond, func() {
			tc.Yield(func(tc2 *kernel.TC) { hog(tc2) })
		})
	}
	h.K.Spawn(h.K.NewProcess("hog"), "hog", hog)

	s.RunUntil(sim.Millisecond)
	const n = 60
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		at := s.Now() + sim.Time(i)*40*sim.Microsecond
		s.At(at, "send", func() { client.send(t, 9000, 1, 1, id, []byte("x")) })
	}
	s.RunUntil(sim.Second)
	if len(client.resps) != n {
		t.Fatalf("%d/%d responses; responses stranded by preemption", len(client.resps), n)
	}
	// The worker really did take the preempt-pending yield path during
	// the run (the yield is the only syscall a Lauberhorn worker makes).
	if h.K.Stats().Syscalls == 0 {
		t.Fatal("preempt-pending yield path never exercised; tighten the quantum")
	}
}

// TestFlushChannelIdempotent checks flushing an empty channel is harmless.
func TestFlushChannelIdempotent(t *testing.T) {
	s, h, client := lhRig(t, 1, 0)
	s.RunUntil(sim.Millisecond)
	h.NIC.FlushChannel(1, 0) // nothing parked
	client.send(t, 9000, 1, 1, 1, []byte("a"))
	s.RunUntil(10 * sim.Millisecond)
	h.NIC.FlushChannel(1, 0)
	h.NIC.FlushChannel(99, 0) // unknown service
	s.RunUntil(20 * sim.Millisecond)
	if len(client.resps) != 1 {
		t.Fatalf("%d responses", len(client.resps))
	}
	// Still serves afterwards.
	client.send(t, 9000, 1, 1, 2, []byte("b"))
	s.RunUntil(40 * sim.Millisecond)
	if len(client.resps) != 2 {
		t.Fatal("service wedged after flush")
	}
}
