package core

import (
	"testing"

	"lauberhorn/internal/rpc"
)

// The NIC and host hot paths build control lines into reused scratch
// buffers (NIC.lineScr, worker.respLine) under the copy-before-next-build
// contract: every respond path copies the line into the cache model before
// the next build overwrites it. This pin keeps the line builders
// allocation-free once the scratch has capacity — a regression means a
// builder started reallocating per event and the staging contract is moot.
func TestLineScratchZeroAlloc(t *testing.T) {
	const lineSize = 128
	body := []byte("scratch-pin")
	scr := scratchLine(nil, lineSize)
	allocs := testing.AllocsPerRun(1000, func() {
		scr, _ = dispatchLine(scr, lineSize, MarkerDispatch, 7, 3, 99, 0x10, 0x20, body)
		scr = markerLine(scr, lineSize, MarkerTryAgain)
		scr, _ = responseLine(scr, lineSize, rpc.StatusOK, 99, body)
		scr = responseBufLine(scr, lineSize, rpc.StatusOK, 99, len(body))
	})
	if allocs != 0 {
		t.Errorf("warm line builders allocate %v per op, want 0", allocs)
	}
	if p := parseDispatchLine(markerLine(scr, lineSize, MarkerRetire)); p.Marker != MarkerRetire {
		t.Fatalf("scratch line corrupted: marker %v", p.Marker)
	}
}
