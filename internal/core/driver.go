package core

import (
	"lauberhorn/internal/fabric"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/stackdrv"
	"lauberhorn/internal/wire"
)

// The cluster-facing stack drivers for the coherent NIC. Lauberhorn is
// the paper's headline architecture with pure cache-line delivery; Hybrid
// is the same host with the §6 DMA fallback armed at the default 4 KiB
// threshold, so large bodies revert to DMA-based transfers in both
// directions (previously only reachable through e12's hand-built rig).
func init() {
	stackdrv.Register(stackdrv.Entry{
		Kind:  stackdrv.Lauberhorn,
		Name:  "Lauberhorn",
		Label: "Lauberhorn (ECI)",
		Sweep: true,
		New:   func(p stackdrv.HostParams) stackdrv.Instance { return newLHDriver(p, 0) },
	})
	stackdrv.Register(stackdrv.Entry{
		Kind:  stackdrv.Hybrid,
		Name:  "Hybrid",
		Label: "Lauberhorn hybrid (4KiB DMA)",
		Sweep: true,
		New: func(p stackdrv.HostParams) stackdrv.Instance {
			return newLHDriver(p, DefaultConfig(p.Endpoint).DMAThreshold)
		},
	})
}

// lhDriver adapts a Lauberhorn Host to the stack-driver lifecycle.
type lhDriver struct {
	host     *Host
	services []stackdrv.Service
}

func newLHDriver(p stackdrv.HostParams, dmaThreshold int) *lhDriver {
	cfg := DefaultHostConfig(p.Endpoint, p.Cores)
	cfg.NIC.DMAThreshold = dmaThreshold
	return &lhDriver{host: NewHost(p.Sim, cfg), services: p.Services}
}

func (d *lhDriver) Kernel() *kernel.Kernel              { return d.host.K }
func (d *lhDriver) FramePort() fabric.FramePort         { return d.host.NIC }
func (d *lhDriver) AttachLink(l *fabric.Link, side int) { d.host.NIC.AttachLink(l, side) }

func (d *lhDriver) Start(peers []wire.Endpoint) {
	for _, ss := range d.services {
		d.host.RegisterService(ss.Desc, ss.Port, ss.MinWorkers)
	}
	// A static ARP entry per peer host lets nested calls address them
	// without per-experiment plumbing.
	for _, ep := range peers {
		d.host.NIC.AddARP(ep.IP, ep.MAC)
	}
	d.host.Start()
}

func (d *lhDriver) ServedFor(svc uint32) (uint64, bool) {
	for _, ss := range d.services {
		if ss.ID == svc {
			return d.host.Served(svc), true
		}
	}
	return 0, false
}

// LauberhornHost exposes the underlying host for experiments that wire
// host-level behavior (async handlers, ablation mutations). The cluster
// layer surfaces it via an optional-interface assertion.
func (d *lhDriver) LauberhornHost() *Host { return d.host }
