package core

import (
	"fmt"

	"lauberhorn/internal/fabric"
	"lauberhorn/internal/mesi"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/stats"
	"lauberhorn/internal/trace"
	"lauberhorn/internal/wire"
)

// Config parameterizes the Lauberhorn NIC.
type Config struct {
	// Fabric must support coherence; it supplies all line-protocol
	// latencies.
	Fabric fabric.Params
	// Local is this host's network identity.
	Local wire.Endpoint

	// Decoder pipeline stage costs (Fig. 3). HeaderParse covers the MAC/
	// IP/UDP streaming decoders; DecodeFixed + DecodePerByte the RPC
	// deserializer (hardware accelerator in the Optimus Prime class);
	// the optional stages run only for flagged messages.
	HeaderParse       sim.Time
	DecodeFixed       sim.Time
	DecodePerByte     sim.Time
	DecryptPerByte    sim.Time
	DecompressPerByte sim.Time

	// TxBuild is the NIC-side cost to assemble a response frame.
	TxBuild sim.Time

	// TryAgainTimeout bounds how long a load may stay deferred before the
	// NIC answers with a TryAgain dummy (§5.1: 15 ms, well under the
	// coherence protocol's bus-error timeout).
	TryAgainTimeout sim.Time

	// SvcQueueDepth bounds the NIC's per-service request queue; excess
	// requests are dropped (and counted), as a real NIC's SRAM would
	// overflow.
	SvcQueueDepth int

	// BacklogHighWater is the per-service queue depth at which the NIC
	// notifies the OS to find it a core (§5.2 dynamic scaling).
	BacklogHighWater int

	// DMAThreshold switches large messages to a DMA data path (§6: "for
	// large messages ... it is best to revert back to DMA-based
	// transfers"). Bodies of at least this many bytes are DMA'd to host
	// memory and the control line carries a buffer descriptor instead of
	// inline+aux data; responses at least this large are pulled back by
	// DMA. Zero disables the fallback (pure cache-line transfers).
	DMAThreshold int
	// DMA supplies the DMA-engine latencies for the fallback path; it
	// must have HasDMA when DMAThreshold > 0.
	DMA fabric.Params
}

// DefaultConfig returns the ECI-based configuration used by the
// experiments.
func DefaultConfig(local wire.Endpoint) Config {
	return Config{
		Fabric:            fabric.ECI,
		Local:             local,
		HeaderParse:       120 * sim.Nanosecond,
		DecodeFixed:       150 * sim.Nanosecond,
		DecodePerByte:     sim.Time(200), // 0.2 ns/B ≈ 5 GB/s decoder
		DecryptPerByte:    sim.Time(250),
		DecompressPerByte: sim.Time(400),
		TxBuild:           150 * sim.Nanosecond,
		TryAgainTimeout:   15 * sim.Millisecond,
		SvcQueueDepth:     256,
		BacklogHighWater:  2,
		DMAThreshold:      4096,
		DMA:               fabric.ECIWithDMA,
	}
}

// Stats counts NIC activity; the experiments read these.
type Stats struct {
	RxFrames     uint64
	RxBad        uint64
	RxDropped    uint64
	RxFiltered   uint64 // not addressed to this host (switched fabrics)
	TxFrames     uint64
	TxNoCarrier  uint64 // staged frames dropped because the link was down
	FastDispatch uint64 // request answered a pending user-mode load
	KernDispatch uint64 // request answered a pending kernel-mode load
	SoftNotify   uint64 // no pending load: OS notified in software
	TryAgains    uint64
	Retires      uint64
	ClientReqs   uint64           // outbound RPCs transmitted
	ClientResps  uint64           // outbound RPC responses delivered
	Backlog      *stats.Histogram // queue depth at enqueue
}

// Endpoint is the NIC-side state of one registered service.
type Endpoint struct {
	Svc     uint32
	PID     int
	Port    uint16 // UDP destination port the service answers on
	methods map[uint16]methodInfo

	queue []*inflight // decoded requests awaiting dispatch

	// waiters are this endpoint's deferred loads, FIFO — cores stalled on
	// the service's control lines.
	waiters []*pendingLoad

	// minWorkers is the endpoint's poller floor: at or above it, the
	// retire policy may hand the core to a starved service.
	minWorkers int
}

// Pollers returns the number of cores stalled on this endpoint.
func (ep *Endpoint) Pollers() int { return len(ep.waiters) }

type methodInfo struct {
	code uint64
	data uint64
}

// inflight tracks one request from decode to response transmit.
type inflight struct {
	serial   uint64
	svc      uint32
	method   uint16
	rpcID    uint64
	body     []byte
	client   wire.Endpoint
	arriveAt sim.Time
	// viaDMA marks a large request whose body was DMA'd to host memory
	// (§6 fallback); the dispatch line then carries a buffer descriptor.
	viaDMA bool
	// dmaResp marks that the host placed the response in a DMA buffer;
	// the NIC pulls it before transmitting.
	dmaResp bool
}

// pendingLoad is a deferred fill: a core stalled on a control line.
// Entries are pooled on the NIC (plFree) with the TryAgain timer callback
// bound once at allocation, so parking a load allocates nothing in steady
// state.
type pendingLoad struct {
	n       *NIC
	addr    mesi.LineAddr
	coreID  int
	svc     uint32 // 0 for kernel lines
	kernel  bool
	respond func(data []byte)
	timer   *sim.Event
	fire    func()
}

// recallPend carries a response-extraction recall's parameters through the
// directory's Recall callback; entries are pooled on the NIC (rcFree) with
// the callback bound once at allocation.
type recallPend struct {
	n       *NIC
	serial  uint64
	addr    mesi.LineAddr
	region  int
	svc     uint32
	coreID  int
	respond func([]byte) // nil when no follow-up load answer is needed
	fire    func([]byte)
}

// NIC is the Lauberhorn device model. It implements mesi.Backing (it is
// the home agent for all control lines) and fabric.FramePort (it
// terminates the Ethernet link).
type NIC struct {
	sim *sim.Sim
	cfg Config
	dir *mesi.Directory

	link *fabric.Link
	side int

	endpoints map[uint32]*Endpoint
	byPort    map[uint16]*Endpoint

	// pendingByCore tracks the (at most one) deferred load per core,
	// indexed by core ID — a direct array hit on every packet arrival and
	// kick, where a map would hash. Grown on demand for out-of-range IDs.
	pendingByCore []*pendingLoad
	// kernelOrder lists the deferred loads of cores whose kernel loop is
	// stalled, FIFO.
	kernelOrder []*pendingLoad

	inflights  map[uint64]*inflight
	nextSerial uint64

	// awaiting[a] is the serial whose response the CPU is writing into
	// line a; set when the request is dispatched, consumed when the
	// paired line is loaded.
	awaiting map[mesi.LineAddr]uint64

	// auxOut[serial] carries response body bytes beyond the inline chunk
	// (the contents of the aux cache lines).
	auxOut map[uint64][]byte

	// sched mirror: per-core PID pushed by the kernel (§4: the OS keeps
	// the NIC updated with scheduling state).
	coreProc   []int
	schedPush  uint64
	ipID       uint16
	decodeBusy sim.Time

	// Preallocated bound callbacks for the per-packet event hot paths:
	// frames and decoded messages wait in FIFO staging queues and a single
	// reused func value fires them, so neither transmit nor decode
	// allocates a closure per packet. FIFO is sound because TxBuild is
	// constant and decode completions are monotone (decodeBusy).
	txFn    func()
	txq     [][]byte
	txHead  int
	decFn   func()
	decq    []decoded
	decHead int

	// Per-NIC staging scratch: the receive path parses frames into rxScr
	// and appends it by value onto decq; decodeDone copies the head slot
	// into dispScr before dispatching. encScr backs synchronous response
	// encodings (BuildUDP copies the payload into the frame before txRPC
	// returns). All three are reused every packet, so the steady-state
	// receive/transmit paths allocate nothing.
	rxScr   decoded
	dispScr decoded
	encScr  []byte
	// lineScr backs dispatch/marker control-line builds whose consumer
	// copies the line synchronously (the directory's deliver path); the
	// viaDMA dispatch, which parks its line across simulated time, still
	// allocates fresh.
	lineScr []byte

	// Free lists: inflight requests, deferred loads, and response-recall
	// pendings are recycled so the steady-state dispatch path allocates
	// nothing per request.
	ifFree []*inflight
	plFree []*pendingLoad
	rcFree []*recallPend

	// epOrder lists endpoints in registration order so the backlog scans
	// (oldestBacklog, anyStarved) walk a slice instead of hashing a map on
	// every deferred-load decision.
	epOrder []*Endpoint

	// Client (outbound RPC) state.
	clientChans  map[uint32]*clientChanNIC
	nextChanID   uint32
	clientCalls  map[uint64]*clientCall
	clientStaged map[mesi.LineAddr]struct{}
	clientAuxIn  map[uint64][]byte
	clientAuxOut map[uint64][]byte
	arp          map[wire.IP]wire.MAC

	// telemetry is the §6 per-service statistics block, readable by the
	// OS over the kernel control channel.
	telemetry map[uint32]*SvcTelemetry
	tracer    *trace.Tracer

	stats Stats

	// NotifyOS is the software slow path: invoked (once per transition
	// to non-empty with no poller) to tell the OS a service has work but
	// no core. The host runtime wires this to an IRQ + wakeup.
	NotifyOS func(svc uint32)

	// OnBacklog is invoked when a service's queue crosses the high-water
	// mark: the OS should find it another core.
	OnBacklog func(svc uint32)

	// RetirePolicy, when true, lets the NIC convert a TryAgain into a
	// Retire if other services are starved while this endpoint idles
	// (NIC-driven core reallocation).
	RetirePolicy bool

	// NoKernelDispatch disables the kernel-line dispatch path (ablation
	// E10: the NIC no longer knows which cores run kernel pollers, as if
	// scheduling state were not shared). Requests for services without a
	// polling core then wait on the software path.
	NoKernelDispatch bool
}

// NewNIC creates a Lauberhorn NIC with nCores worth of kernel endpoints.
func NewNIC(s *sim.Sim, cfg Config, nCores int) *NIC {
	if !cfg.Fabric.HasCoherence {
		panic(fmt.Sprintf("core: fabric %s has no coherence; Lauberhorn requires it", cfg.Fabric.Name))
	}
	if cfg.SvcQueueDepth <= 0 {
		cfg.SvcQueueDepth = 256
	}
	n := &NIC{
		sim:           s,
		cfg:           cfg,
		endpoints:     make(map[uint32]*Endpoint),
		byPort:        make(map[uint16]*Endpoint),
		pendingByCore: make([]*pendingLoad, nCores),
		inflights:     make(map[uint64]*inflight),
		awaiting:      make(map[mesi.LineAddr]uint64),
		auxOut:        make(map[uint64][]byte),
		coreProc:      make([]int, nCores),
		nextSerial:    1,
		clientChans:   make(map[uint32]*clientChanNIC),
		clientCalls:   make(map[uint64]*clientCall),
		clientStaged:  make(map[mesi.LineAddr]struct{}),
		clientAuxIn:   make(map[uint64][]byte),
		clientAuxOut:  make(map[uint64][]byte),
		arp:           make(map[wire.IP]wire.MAC),
		telemetry:     make(map[uint32]*SvcTelemetry),
	}
	if cfg.DMAThreshold > 0 && !cfg.DMA.HasDMA {
		panic("core: DMAThreshold set but DMA fabric has no DMA engine")
	}
	n.txFn = n.txFire
	n.decFn = n.decodeDone
	n.stats.Backlog = stats.NewHistogram()
	n.dir = mesi.NewDirectory(s, cfg.Fabric, n)
	return n
}

// pendingOn returns the deferred load parked on coreID, if any.
func (n *NIC) pendingOn(coreID int) *pendingLoad {
	if coreID < 0 || coreID >= len(n.pendingByCore) {
		return nil
	}
	return n.pendingByCore[coreID]
}

// Directory returns the coherence directory the NIC homes.
func (n *NIC) Directory() *mesi.Directory { return n.dir }

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// Stats returns a snapshot of the counters.
func (n *NIC) Stats() Stats { return n.stats }

// AttachLink connects the NIC to the network.
func (n *NIC) AttachLink(l *fabric.Link, side int) {
	n.link = l
	n.side = side
}

// RegisterService installs an endpoint: the OS pushes the service's
// demultiplex key (UDP port), process, and per-method code/data pointers —
// the state a traditional NIC never gets to see (§4: "it should have
// access to all the relevant OS state").
func (n *NIC) RegisterService(svc *rpc.ServiceDesc, pid int, port uint16, minWorkers int) *Endpoint {
	if _, dup := n.endpoints[svc.ID]; dup {
		panic(fmt.Sprintf("core: service %d already registered", svc.ID))
	}
	if _, dup := n.byPort[port]; dup {
		panic(fmt.Sprintf("core: port %d already registered", port))
	}
	ep := &Endpoint{
		Svc:        svc.ID,
		PID:        pid,
		Port:       port,
		methods:    make(map[uint16]methodInfo),
		minWorkers: minWorkers,
	}
	for _, m := range svc.Methods {
		ep.methods[m.ID] = methodInfo{code: m.CodeAddr, data: m.DataAddr}
	}
	n.endpoints[svc.ID] = ep
	n.byPort[port] = ep
	n.epOrder = append(n.epOrder, ep)
	return ep
}

// ---- hot-path free lists ----

// newInflight returns a zeroed request-tracking entry from the free list.
//
//lhlint:hotpath
func (n *NIC) newInflight() *inflight {
	if k := len(n.ifFree); k > 0 {
		req := n.ifFree[k-1]
		n.ifFree = n.ifFree[:k-1]
		return req
	}
	return &inflight{}
}

// freeInflight recycles a finished request. Callers must guarantee no
// reference survives — the DMA-response path, whose transmit closure
// retains the request, never releases.
//
//lhlint:hotpath
func (n *NIC) freeInflight(req *inflight) {
	*req = inflight{}
	n.ifFree = append(n.ifFree, req)
}

// newPendingLoad returns a deferred-load entry with its TryAgain callback
// bound once at allocation.
//
//lhlint:hotpath
func (n *NIC) newPendingLoad() *pendingLoad {
	if k := len(n.plFree); k > 0 {
		p := n.plFree[k-1]
		n.plFree = n.plFree[:k-1]
		return p
	}
	p := &pendingLoad{n: n}
	//lhlint:allow hotpath bound once per pooled entry; reused for every deferred load that rides it
	p.fire = func() { p.n.fireTryAgain(p) }
	return p
}

// freePendingLoad recycles an answered deferred load. The TryAgain timer
// must already be cancelled (removePending does both).
//
//lhlint:hotpath
func (n *NIC) freePendingLoad(p *pendingLoad) {
	p.respond = nil
	p.timer = nil
	n.plFree = append(n.plFree, p)
}

// newRecallPend returns a recall-parameter entry with its callback bound
// once at allocation.
//
//lhlint:hotpath
func (n *NIC) newRecallPend() *recallPend {
	if k := len(n.rcFree); k > 0 {
		r := n.rcFree[k-1]
		n.rcFree = n.rcFree[:k-1]
		return r
	}
	r := &recallPend{n: n}
	//lhlint:allow hotpath bound once per pooled entry; reused for every response recall that rides it
	r.fire = func(data []byte) { r.run(data) }
	return r
}

// run transmits the recalled response, then (for loads that triggered the
// recall) answers the waiting load. The entry is released first: answering
// the load can park a new deferred load or dispatch, either of which may
// recall again and need the pool.
//
//lhlint:hotpath
func (r *recallPend) run(data []byte) {
	n, serial := r.n, r.serial
	addr, region, svc, coreID := r.addr, r.region, r.svc, r.coreID
	respond := r.respond
	r.respond = nil
	n.rcFree = append(n.rcFree, r)
	n.transmitResponse(serial, data)
	if respond != nil {
		n.answerLoad(addr, region, svc, coreID, respond)
	}
}

// SchedUpdate is the kernel's push of scheduling state: core coreID now
// runs pid (0 = idle/kernel). The push itself is a posted coherent store;
// its cost is charged host-side (see Host).
func (n *NIC) SchedUpdate(coreID, pid int) {
	n.coreProc[coreID] = pid
	n.schedPush++
}

// SchedPushes reports how many scheduler-state pushes the NIC received.
func (n *NIC) SchedPushes() uint64 { return n.schedPush }

// QueueLen returns the backlog of a service.
func (n *NIC) QueueLen(svc uint32) int {
	if ep, ok := n.endpoints[svc]; ok {
		return len(ep.queue)
	}
	return 0
}

// Pollers returns how many channels are currently stalled on the service.
func (n *NIC) Pollers(svc uint32) int {
	if ep, ok := n.endpoints[svc]; ok {
		return len(ep.waiters)
	}
	return 0
}

// ---- mesi.Backing: the NIC as home agent ----

// ReadLine is invoked by the directory when a CPU load misses to a
// NIC-homed line. This is the heart of Fig. 4: the NIC may answer with a
// dispatch immediately, or defer the fill until a packet arrives.
// Exclusive fills (a CPU about to write a response) are answered
// immediately with an empty line — only poll loads defer.
//
//lhlint:hotpath
func (n *NIC) ReadLine(addr mesi.LineAddr, excl bool, respond func(data []byte)) {
	if excl {
		n.lineScr = markerLine(n.lineScr, n.lineSize(), MarkerIdle)
		respond(n.lineScr)
		return
	}
	region, svc, coreID, idx := splitAddr(addr)
	if region == regionClient {
		n.clientReadLine(addr, svc, coreID, idx, respond)
		return
	}

	// Seeing a load on one line of a pair means the CPU finished writing
	// a response into the other line (if one was outstanding): fetch it
	// exclusive and transmit, *then* consider answering this load (§5.1
	// ordering).
	var pairAddr mesi.LineAddr
	if region == regionKernel {
		pairAddr = kernelCtrl(coreID, 1-idx)
	} else {
		pairAddr = svcCtrl(svc, coreID, 1-idx)
	}
	if serial, ok := n.awaiting[pairAddr]; ok {
		delete(n.awaiting, pairAddr)
		r := n.newRecallPend()
		r.serial, r.addr, r.region, r.svc, r.coreID, r.respond =
			serial, addr, region, svc, coreID, respond
		n.dir.Recall(pairAddr, r.fire)
		return
	}
	n.answerLoad(addr, region, svc, coreID, respond)
}

// WriteLine receives dirty data written back to the home; response
// extraction happens in the Recall path, so nothing further is needed.
func (n *NIC) WriteLine(addr mesi.LineAddr, data []byte) {}

// answerLoad satisfies a control-line load from the service queue, or
// defers it.
//
//lhlint:hotpath
func (n *NIC) answerLoad(addr mesi.LineAddr, region int, svc uint32, coreID int, respond func([]byte)) {
	if region == regionService {
		ep := n.endpoints[svc]
		if ep == nil {
			// Load on an unregistered endpoint: answer TryAgain so the
			// core is not wedged.
			n.lineScr = markerLine(n.lineScr, n.lineSize(), MarkerTryAgain)
			respond(n.lineScr)
			return
		}
		if len(ep.queue) > 0 {
			req := ep.queue[0]
			ep.queue = ep.queue[1:]
			n.stats.FastDispatch++
			n.noteDispatch(req, false)
			n.emit(trace.Dispatch, uint64(req.svc), uint64(coreID), "fast-queued")
			n.dispatchTo(addr, req, false, respond)
			return
		}
		// Work-conserving reallocation: if this endpoint is idle while
		// another service has queued work and no poller, retire the core
		// right away instead of parking it for 15 ms (§5.2: the NIC
		// "requests the OS to reschedule processes in response to new
		// packets").
		if n.RetirePolicy && n.anyStarved() && len(ep.waiters) >= ep.minWorkers {
			n.stats.Retires++
			n.lineScr = markerLine(n.lineScr, n.lineSize(), MarkerRetire)
			respond(n.lineScr)
			return
		}
		// Nothing queued: defer (stalled load).
		n.defer_(addr, coreID, svc, false, respond)
		return
	}

	// Kernel line: any service's backlog can be dispatched here.
	if !n.NoKernelDispatch {
		if req, _ := n.oldestBacklog(); req != nil {
			n.stats.KernDispatch++
			n.noteDispatch(req, true)
			n.emit(trace.Dispatch, uint64(req.svc), uint64(coreID), "kernel-queued")
			n.dispatchTo(addr, req, true, respond)
			return
		}
	}
	n.defer_(addr, coreID, 0, true, respond)
}

// oldestBacklog pops the longest-waiting queued request across services
// that have no poller (services with pollers will be served by them).
// Ties break on service ID, keeping the choice deterministic. The scan
// walks the registration-ordered slice: endpoint sets are small and fixed
// after setup, and the slice avoids per-call map-iterator work on a path
// taken for every kernel-line load.
//
//lhlint:hotpath
func (n *NIC) oldestBacklog() (*inflight, *Endpoint) {
	var best *Endpoint
	var bestAt sim.Time
	for _, ep := range n.epOrder {
		if len(ep.queue) == 0 || len(ep.waiters) > 0 {
			continue
		}
		if best == nil || ep.queue[0].arriveAt < bestAt ||
			(ep.queue[0].arriveAt == bestAt && ep.Svc < best.Svc) {
			best = ep
			bestAt = ep.queue[0].arriveAt
		}
	}
	if best == nil {
		return nil, nil
	}
	req := best.queue[0]
	best.queue = best.queue[1:]
	return req, best
}

// defer_ parks a load until work (or the TryAgain timer) arrives.
//
//lhlint:hotpath
func (n *NIC) defer_(addr mesi.LineAddr, coreID int, svc uint32, kernel bool, respond func([]byte)) {
	for _, q := range n.pendingByCore {
		if q != nil && q.addr == addr {
			panicDuplicatePending(addr)
		}
	}
	if coreID >= len(n.pendingByCore) {
		n.pendingByCore = append(n.pendingByCore, make([]*pendingLoad, coreID+1-len(n.pendingByCore))...)
	}
	if n.pendingByCore[coreID] != nil {
		panicPendingBusy(coreID)
	}
	p := n.newPendingLoad()
	p.addr, p.coreID, p.svc, p.kernel, p.respond = addr, coreID, svc, kernel, respond
	p.timer = n.sim.After(n.cfg.TryAgainTimeout, "lauberhorn-tryagain", p.fire)
	n.pendingByCore[coreID] = p
	region, _, _, _ := splitAddr(addr)
	switch {
	case region == regionClient:
		// Client-channel waits have no endpoint bookkeeping.
	case kernel:
		n.kernelOrder = append(n.kernelOrder, p)
	default:
		ep := n.endpoints[svc]
		ep.waiters = append(ep.waiters, p)
	}
}

// removePending unlinks a deferred load (it is about to be answered).
func (n *NIC) removePending(p *pendingLoad) {
	n.pendingByCore[p.coreID] = nil
	if p.timer != nil {
		n.sim.Cancel(p.timer)
		p.timer = nil
	}
	region, _, _, _ := splitAddr(p.addr)
	if region == regionClient {
		return
	}
	if p.kernel {
		for i, q := range n.kernelOrder {
			if q == p {
				n.kernelOrder = append(n.kernelOrder[:i], n.kernelOrder[i+1:]...)
				break
			}
		}
		return
	}
	ep := n.endpoints[p.svc]
	for i, w := range ep.waiters {
		if w == p {
			ep.waiters = append(ep.waiters[:i], ep.waiters[i+1:]...)
			break
		}
	}
}

// fireTryAgain answers a deferred load with TryAgain — or Retire, when the
// retire policy decides this core is better spent elsewhere.
func (n *NIC) fireTryAgain(p *pendingLoad) {
	p.timer = nil
	n.removePending(p)
	marker := byte(MarkerTryAgain)
	region, _, _, _ := splitAddr(p.addr)
	if n.RetirePolicy && !p.kernel && region != regionClient {
		// If another service is starved (queued work, no poller) while
		// this endpoint idles above its worker floor, retire the core.
		// Note: the poller count still includes p at this point, so the
		// comparison is against the pre-removal population.
		if n.anyStarved() {
			ep := n.endpoints[p.svc]
			if len(ep.waiters)+1 > ep.minWorkers {
				marker = MarkerRetire
			}
		}
	}
	if marker == MarkerRetire {
		n.stats.Retires++
		n.emit(trace.Retire, uint64(p.coreID), uint64(p.svc), "timer")
	} else {
		n.stats.TryAgains++
		n.emit(trace.TryAgain, uint64(p.coreID), uint64(p.svc), "")
	}
	respond := p.respond
	n.freePendingLoad(p)
	n.lineScr = markerLine(n.lineScr, n.lineSize(), marker)
	respond(n.lineScr)
}

// panicDuplicatePending and panicPendingBusy keep fmt boxing off defer_'s
// hot path; neither returns.
func panicDuplicatePending(addr mesi.LineAddr) {
	panic(fmt.Sprintf("core: duplicate pending load on %#x", uint64(addr)))
}

func panicPendingBusy(coreID int) {
	panic(fmt.Sprintf("core: core %d already has a pending load", coreID))
}

// anyStarved reports whether any pollerless service has queued work.
//
//lhlint:hotpath
func (n *NIC) anyStarved() bool {
	for _, ep := range n.epOrder {
		if len(ep.queue) > 0 && len(ep.waiters) == 0 {
			return true
		}
	}
	return false
}

// FlushChannel immediately recalls and transmits any response parked in
// the (svc, core) channel. The OS calls it on the deschedule path, before
// a worker leaves its user loop: without it, a preemption that lands
// between writing a response and loading the paired line would strand the
// response in the descheduled core's cache until the channel is next used
// — a race surfaced by the handoff model in internal/check. The worker
// only yields between requests, so an awaiting entry here always has its
// response written.
func (n *NIC) FlushChannel(svc uint32, coreID int) {
	for idx := 0; idx < 2; idx++ {
		addr := svcCtrl(svc, coreID, idx)
		serial, ok := n.awaiting[addr]
		if !ok {
			continue
		}
		delete(n.awaiting, addr)
		r := n.newRecallPend()
		r.serial = serial
		n.dir.Recall(addr, r.fire)
	}
}

// Kick immediately unblocks a deferred load on the given core with
// TryAgain — the OS side of descheduling a stalled process (§5.1: IPI,
// then "Lauberhorn can send the process a TryAgain message, unblocking
// it").
func (n *NIC) Kick(coreID int) bool {
	p := n.pendingOn(coreID)
	if p == nil {
		return false
	}
	n.removePending(p)
	n.stats.TryAgains++
	respond := p.respond
	n.freePendingLoad(p)
	n.lineScr = markerLine(n.lineScr, n.lineSize(), MarkerTryAgain)
	respond(n.lineScr)
	return true
}

// RetireCore answers the pending load on coreID with Retire (explicit OS-
// requested core reclamation, e.g. for a non-RPC process).
func (n *NIC) RetireCore(coreID int) bool {
	p := n.pendingOn(coreID)
	if p == nil {
		return false
	}
	n.removePending(p)
	n.stats.Retires++
	respond := p.respond
	n.freePendingLoad(p)
	n.lineScr = markerLine(n.lineScr, n.lineSize(), MarkerRetire)
	respond(n.lineScr)
	return true
}

// dispatchTo answers a load with a request dispatch. kernel selects the
// KDispatch marker (the core must switch processes first); in that case
// the response is expected on the service channel's line 0, because the
// core leaves the kernel loop and enters the service's user loop.
func (n *NIC) dispatchTo(addr mesi.LineAddr, req *inflight, kernel bool, respond func([]byte)) {
	ep := n.endpoints[req.svc]
	mi := ep.methods[req.method]
	marker := byte(MarkerDispatch)
	respAddr := addr
	if kernel {
		marker = MarkerKDispatch
		_, _, coreID, _ := splitAddr(addr)
		respAddr = svcCtrl(req.svc, coreID, 0)
	}
	n.awaiting[respAddr] = req.serial
	if req.viaDMA {
		// §6 large-message fallback: DMA the body to a host buffer, then
		// answer the load with a buffer descriptor instead of inline
		// data. The fill stays deferred for the transfer's duration, so
		// the line must be freshly allocated (it parks across simulated
		// time while the scratch gets rebuilt).
		inline := []byte(nil)
		line, _ := dispatchLine(nil, n.lineSize(), marker|markerBufFlag, req.svc, req.method,
			req.serial, mi.code, mi.data, inline)
		// dispatchLine zeroed BodyLen from the empty inline slice;
		// rewrite it with the true buffer length.
		line[31] = byte(len(req.body) >> 8)
		line[32] = byte(len(req.body))
		//lhlint:allow hotpath DMA fallback path, not the cache-line fast path; the closure models the pending transfer
		n.sim.After(n.cfg.DMA.DMATransfer(len(req.body)), "lh-dma-in", func() {
			respond(line)
		})
		return
	}
	n.lineScr, _ = dispatchLine(n.lineScr, n.lineSize(), marker, req.svc, req.method, req.serial,
		mi.code, mi.data, req.body)
	// Body bytes beyond the inline chunk arrive via aux lines; the host
	// charges the streaming cost and fetches them with AuxBody. The
	// responder copies the line before returning (directory deliver), so
	// the scratch is free for the next dispatch.
	respond(n.lineScr)
}

// lineSize returns the coherence granule.
func (n *NIC) lineSize() int { return n.cfg.Fabric.CacheLineSize }

// AuxBody returns the part of a request body that did not fit inline —
// the contents of the request's aux cache lines.
func (n *NIC) AuxBody(serial uint64) []byte {
	req := n.inflights[serial]
	if req == nil {
		return nil
	}
	inline := n.lineSize() - dispatchHeaderLen
	if len(req.body) <= inline {
		return nil
	}
	return req.body[inline:]
}

// AuxLines returns how many aux cache lines a body of the given length
// occupies beyond the control line.
func (n *NIC) AuxLines(bodyLen int) int {
	inline := n.lineSize() - dispatchHeaderLen
	if bodyLen <= inline {
		return 0
	}
	return n.cfg.Fabric.Lines(bodyLen - inline)
}

// WriteAuxResponse stores the response body overflow (the CPU's stores to
// aux lines); timing is charged by the host loop.
func (n *NIC) WriteAuxResponse(serial uint64, rest []byte) {
	cp := make([]byte, len(rest))
	copy(cp, rest)
	n.auxOut[serial] = cp
}

// WriteDMAResponse places a large response body in a host DMA buffer; the
// NIC pulls it with its DMA engine before transmitting (§6 fallback).
func (n *NIC) WriteDMAResponse(serial uint64, body []byte) {
	cp := make([]byte, len(body))
	copy(cp, body)
	n.auxOut[serial] = cp
	if req := n.inflights[serial]; req != nil {
		req.dmaResp = true
	}
}

// DMABody returns the full request body for a buffer-dispatched request
// (the contents of the host DMA buffer after the NIC's transfer).
func (n *NIC) DMABody(serial uint64) []byte {
	req := n.inflights[serial]
	if req == nil {
		return nil
	}
	return req.body
}

// ---- receive path ----

// DeliverFrame implements fabric.FramePort: run the decode pipeline, then
// dispatch (Fig. 3).
//
//lhlint:hotpath
func (n *NIC) DeliverFrame(frame []byte) {
	// The pipeline accepts a new packet each initiation interval; model
	// the engine as busy until the current packet clears the slowest
	// stage.
	start := n.sim.Now()
	if n.decodeBusy > start {
		start = n.decodeBusy
	}
	dec := &n.rxScr
	if err := wire.ParseUDPInto(frame, &dec.d); err != nil {
		n.stats.RxBad++
		return
	}
	if dec.d.IP.Dst != n.cfg.Local.IP {
		// Switched fabrics flood frames for unlearned MACs; not ours.
		n.stats.RxFiltered++
		return
	}
	if err := rpc.DecodeInto(dec.d.Payload, &dec.msg); err != nil {
		n.stats.RxBad++
		return
	}
	lat := n.cfg.HeaderParse + n.cfg.DecodeFixed + sim.Time(len(dec.msg.Body))*n.cfg.DecodePerByte
	if dec.msg.Flags&rpc.FlagEncrypted != 0 {
		lat += sim.Time(len(dec.msg.Body)) * n.cfg.DecryptPerByte
	}
	if dec.msg.Flags&rpc.FlagCompressed != 0 {
		lat += sim.Time(len(dec.msg.Body)) * n.cfg.DecompressPerByte
	}
	n.decodeBusy = start + lat
	// Completion times are monotone (each packet starts no earlier than
	// the previous decodeBusy), so a FIFO queue plus one prebound callback
	// replaces a per-packet closure. The queue holds values, not pointers:
	// staging a packet is a copy into recycled slice capacity, not a heap
	// allocation.
	n.decq = append(n.decq, *dec)
	n.sim.At(start+lat, "lauberhorn-decoded", n.decFn)
}

// decoded is one packet staged by value between the decode pipeline and
// dispatch; Datagram.Payload and Message.Body alias the delivered frame.
type decoded struct {
	d   wire.Datagram
	msg rpc.Message
}

// decodeDone dispatches the oldest staged packet; it is the single bound
// callback behind every "lauberhorn-decoded" event. The head slot is
// copied into dispScr (not referenced in place) so a dispatch path that
// stages new packets can grow decq without invalidating what we're
// dispatching.
//
//lhlint:hotpath
func (n *NIC) decodeDone() {
	n.dispScr = n.decq[n.decHead]
	n.decq[n.decHead] = decoded{}
	n.decHead++
	if n.decHead == len(n.decq) {
		n.decq = n.decq[:0]
		n.decHead = 0
	}
	if n.dispScr.msg.IsRequest() {
		n.admit(&n.dispScr.d, &n.dispScr.msg)
	} else {
		n.deliverClientResponse(&n.dispScr.msg)
	}
}

// admit demultiplexes a decoded request to its endpoint and dispatches or
// queues it.
//
//lhlint:hotpath
func (n *NIC) admit(d *wire.Datagram, msg *rpc.Message) {
	ep := n.byPort[d.UDP.DstPort]
	if ep == nil || ep.Svc != msg.Service {
		n.stats.RxBad++
		return
	}
	if _, ok := ep.methods[msg.Method]; !ok {
		// Unknown method: NIC answers directly with an error response —
		// zero host involvement.
		n.stats.RxFrames++
		n.txRPC(wire.Endpoint{MAC: d.Eth.Src, IP: d.IP.Src, Port: d.UDP.SrcPort},
			rpc.EncodeResponse(msg.Service, msg.Method, msg.ID, rpc.StatusNoSuchMethod, nil))
		return
	}
	n.stats.RxFrames++
	// The body aliases the delivered frame: frames are allocated per send
	// and never recycled, so the request can reference the payload in
	// place for its whole inflight lifetime instead of copying it.
	req := n.newInflight()
	req.serial = n.nextSerial
	req.svc = msg.Service
	req.method = msg.Method
	req.rpcID = msg.ID
	req.body = msg.Body
	req.client = wire.Endpoint{MAC: d.Eth.Src, IP: d.IP.Src, Port: d.UDP.SrcPort}
	req.arriveAt = n.sim.Now()
	req.viaDMA = n.cfg.DMAThreshold > 0 && len(msg.Body) >= n.cfg.DMAThreshold
	n.nextSerial++
	n.inflights[req.serial] = req
	n.noteArrival(req.svc)
	n.emit(trace.RxFrame, uint64(req.svc), req.serial, "")

	// Fast path: a core is stalled on this service's control line (FIFO
	// over the endpoint's waiting channels).
	if len(ep.waiters) > 0 {
		p := ep.waiters[0]
		n.removePending(p)
		n.stats.FastDispatch++
		n.noteDispatch(req, false)
		n.emit(trace.Dispatch, uint64(req.svc), uint64(p.coreID), "fast")
		addr, respond := p.addr, p.respond
		n.freePendingLoad(p)
		n.dispatchTo(addr, req, false, respond)
		return
	}
	// Medium path: a core's kernel loop is stalled; hand it the request
	// with a process-switch marker. FIFO over kernel pollers.
	if len(n.kernelOrder) > 0 && !n.NoKernelDispatch {
		p := n.kernelOrder[0]
		n.removePending(p)
		n.stats.KernDispatch++
		n.noteDispatch(req, true)
		n.emit(trace.Dispatch, uint64(req.svc), uint64(p.coreID), "kernel")
		addr, respond := p.addr, p.respond
		n.freePendingLoad(p)
		n.dispatchTo(addr, req, true, respond)
		return
	}
	// Slow path: queue on the endpoint and notify the OS in software.
	if len(ep.queue) >= n.cfg.SvcQueueDepth {
		n.stats.RxDropped++
		n.telemetryFor(req.svc).Dropped++
		delete(n.inflights, req.serial)
		n.freeInflight(req)
		return
	}
	ep.queue = append(ep.queue, req)
	n.telemetryFor(req.svc).Queued++
	n.stats.Backlog.Record(int64(len(ep.queue)))
	if len(ep.queue) == 1 && len(ep.waiters) == 0 && n.NotifyOS != nil {
		n.stats.SoftNotify++
		n.NotifyOS(ep.Svc)
	}
	if n.OnBacklog != nil && len(ep.queue) == n.cfg.BacklogHighWater {
		n.OnBacklog(ep.Svc)
	}
}

// ---- transmit path ----

// transmitResponse parses the recalled response line, merges aux bytes,
// and sends the RPC response to the client.
//
//lhlint:hotpath
func (n *NIC) transmitResponse(serial uint64, line []byte) {
	req := n.inflights[serial]
	if req == nil {
		return // duplicate recall or cancelled request
	}
	pr, ok := parseResponseLine(line)
	if !ok || pr.Serial != serial {
		// The CPU never wrote a response (e.g. it was descheduled before
		// finishing). Keep the inflight; the response will be recovered
		// when the request is re-dispatched.
		return
	}
	delete(n.inflights, serial)
	body := pr.Inline
	if aux := n.auxOut[serial]; aux != nil {
		body = append(append([]byte{}, pr.Inline...), aux...)
		delete(n.auxOut, serial)
	}
	if len(body) > pr.BodyLen {
		body = body[:pr.BodyLen]
	}
	if pr.Buf && req.dmaResp {
		// Pull the buffer out of host memory before transmitting. The
		// payload must be freshly allocated here: the closure holds it
		// until the DMA completes, so it cannot come from encScr.
		payload := rpc.EncodeResponse(req.svc, req.method, req.rpcID, pr.Status, body)
		//lhlint:allow hotpath DMA-buffer fallback path, not the cache-line fast path; the closure models the pending descriptor
		n.sim.After(n.cfg.DMA.DMARead+n.cfg.DMA.DMATransfer(len(body)), "lh-dma-out", func() {
			n.txRPC(req.client, payload)
		})
		return
	}
	// Fast path: encode into the reused scratch buffer — txRPC copies the
	// payload into the frame before returning — then recycle the inflight
	// (the DMA path above must not: its closure holds req until DMA-out).
	n.encScr = rpc.AppendMessage(n.encScr[:0],
		rpc.Header{Kind: rpc.KindResponse, Service: req.svc, Method: req.method, ID: req.rpcID, Status: pr.Status}, body)
	n.txRPC(req.client, n.encScr)
	n.freeInflight(req)
}

// txRPC frames and transmits an RPC message after the NIC TX build cost.
// Built frames wait in a FIFO staging queue; TxBuild is constant, so the
// single prebound txFn fires them in schedule order without allocating a
// closure per packet.
//
//lhlint:hotpath
func (n *NIC) txRPC(dst wire.Endpoint, payload []byte) {
	if n.link == nil {
		panic("core: NIC has no link")
	}
	n.ipID++
	frame, err := wire.BuildUDP(n.cfg.Local, dst, n.ipID, payload)
	if err != nil {
		panic(fmt.Sprintf("core: tx: %v", err))
	}
	n.txq = append(n.txq, frame)
	n.sim.After(n.cfg.TxBuild, "lauberhorn-tx", n.txFn)
}

// txFire sends the oldest staged frame onto the link. A carrier check
// guards the wire (fault injection can down the access link): frames
// staged toward a dead link are dropped at the NIC, as a real MAC does,
// rather than burning link-layer state.
//
//lhlint:hotpath
func (n *NIC) txFire() {
	frame := n.txq[n.txHead]
	n.txq[n.txHead] = nil
	n.txHead++
	if n.txHead == len(n.txq) {
		n.txq = n.txq[:0]
		n.txHead = 0
	}
	if !n.link.Up() {
		n.stats.TxNoCarrier++
		return
	}
	n.stats.TxFrames++
	n.emit(trace.TxFrame, uint64(len(frame)), 0, "")
	n.link.Send(n.side, frame)
}
