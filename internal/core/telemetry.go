package core

import (
	"fmt"
	"sort"
	"strings"

	"lauberhorn/internal/sim"
	"lauberhorn/internal/stats"
	"lauberhorn/internal/trace"
)

// This file implements the §6 "support for tracing, debugging, and
// statistics" the paper calls out as benefiting from close NIC/OS
// integration: the NIC, sitting on every request, keeps per-service
// telemetry (arrival rates, queueing delay, dispatch-path mix) that the
// OS reads for free over the kernel control channel — no packet sampling
// or host-side instrumentation on the data path.

// SvcTelemetry is the NIC's per-service view.
type SvcTelemetry struct {
	Svc       uint32
	Name      string
	Arrivals  uint64
	Fast      uint64 // dispatched straight into a stalled user load
	ViaKernel uint64 // dispatched through a kernel loop (process switch)
	Queued    uint64 // had to wait in NIC SRAM
	Dropped   uint64
	// QueueDelay is the time requests spent queued before dispatch (ps
	// samples).
	QueueDelay *stats.Histogram
	// RateEWMA is the smoothed arrival rate estimate in requests/second.
	RateEWMA float64

	rate      *stats.EWMA
	lastAt    sim.Time
	haveFirst bool
}

// telemetryFor returns (allocating) the per-service telemetry record.
func (n *NIC) telemetryFor(svc uint32) *SvcTelemetry {
	tl, ok := n.telemetry[svc]
	if !ok {
		name := ""
		if ep := n.endpoints[svc]; ep != nil {
			name = fmt.Sprintf("svc%d", svc)
		}
		tl = &SvcTelemetry{
			Svc:        svc,
			Name:       name,
			QueueDelay: stats.NewHistogram(),
			rate:       stats.NewEWMA(0.05),
		}
		n.telemetry[svc] = tl
	}
	return tl
}

// noteArrival records a decoded request for a service.
func (n *NIC) noteArrival(svc uint32) {
	tl := n.telemetryFor(svc)
	tl.Arrivals++
	now := n.sim.Now()
	if tl.haveFirst && now > tl.lastAt {
		gap := (now - tl.lastAt).Seconds()
		tl.rate.Observe(1 / gap)
		tl.RateEWMA = tl.rate.Value()
	}
	tl.haveFirst = true
	tl.lastAt = now
}

// noteDispatch records how a request reached a core and its queueing
// delay.
func (n *NIC) noteDispatch(req *inflight, kernel bool) {
	tl := n.telemetryFor(req.svc)
	if kernel {
		tl.ViaKernel++
	} else {
		tl.Fast++
	}
	delay := n.sim.Now() - req.arriveAt
	if delay > 0 {
		tl.QueueDelay.Record(int64(delay))
	} else {
		tl.QueueDelay.Record(0)
	}
}

// Telemetry returns the NIC's view of one service (nil if it has seen no
// traffic).
func (n *NIC) Telemetry(svc uint32) *SvcTelemetry { return n.telemetry[svc] }

// TelemetryReport renders all services' telemetry, sorted by service ID —
// what an operator would read through the kernel control channel.
func (n *NIC) TelemetryReport() string {
	ids := make([]int, 0, len(n.telemetry))
	for id := range n.telemetry {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "lauberhorn NIC telemetry (%d services)\n", len(ids))
	for _, id := range ids {
		tl := n.telemetry[uint32(id)]
		p := tl.QueueDelay.Percentiles(0.5, 0.99)
		fmt.Fprintf(&b, "  svc %-4d arrivals=%-7d fast=%-7d kernel=%-6d queued=%-6d dropped=%-4d rate=%.0f/s qdelay{p50=%v p99=%v}\n",
			tl.Svc, tl.Arrivals, tl.Fast, tl.ViaKernel, tl.Queued, tl.Dropped,
			tl.RateEWMA,
			sim.Time(p[0]),
			sim.Time(p[1]))
	}
	return b.String()
}

// SetTracer attaches a trace ring buffer; the NIC emits dispatch, rx/tx,
// TryAgain and Retire events into it when enabled.
func (n *NIC) SetTracer(tr *trace.Tracer) { n.tracer = tr }

// emit traces an event if a tracer is attached.
func (n *NIC) emit(kind trace.Kind, a, b uint64, note string) {
	if n.tracer != nil {
		n.tracer.Emit(kind, a, b, note)
	}
}
