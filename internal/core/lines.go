// Package core implements Lauberhorn, the paper's contribution: a smart
// NIC that is a full, trusted component of the OS. The NIC terminates the
// coherence protocol as home agent for a set of control cache lines
// (Fig. 4), runs the packet decode pipeline and RPC unmarshalling in
// "hardware" (Fig. 3), mirrors the kernel's scheduling state, dispatches
// requests directly into stalled user-mode loads, and drives OS scheduling
// decisions from observed load (Fig. 5).
//
// The package has two halves: the NIC device model (type NIC), and the
// host runtime (type Host) — the kernel-side integration with per-core
// worker loops that morph between the kernel dispatch loop and per-service
// user-mode loops.
//
// Determinism invariants: dispatch choices depend only on simulated time
// and FIFO queues of pending loads/requests; the NIC draws no randomness
// and keeps no wall-clock state, so a request trace replays identically
// for a given seed and frame sequence.
package core

import (
	"encoding/binary"
	"fmt"

	"lauberhorn/internal/mesi"
)

// Control-line address scheme. Lauberhorn homes two disjoint regions:
//
//	kernel endpoints: one ctrl-line pair per core, used by the kernel
//	    dispatch loop (Fig. 5 right, "critical kernel task").
//	service endpoints: one ctrl-line pair per (service, core) — the
//	    channel a core uses while running that service's user-mode loop.
//
// Addresses are synthetic line numbers (not byte addresses); the mesi
// package treats them opaquely.
const (
	regionKernel  = 0x0
	regionService = 0x1
	// regionClient holds outbound-RPC channels: the TX path's "similar,
	// disjoint set of cache lines" (§5.1), also serving as the dedicated
	// reply endpoints that make nested RPCs cheap (§6).
	regionClient = 0x2
)

// lineAddr packs (region, service, core, index) into a mesi.LineAddr.
func lineAddr(region int, svc uint32, coreID int, idx int) mesi.LineAddr {
	if idx != 0 && idx != 1 {
		panic("core: ctrl line index must be 0 or 1")
	}
	return mesi.LineAddr(uint64(region)<<56 | uint64(svc)<<24 | uint64(coreID)<<4 | uint64(idx))
}

// splitAddr unpacks a line address.
func splitAddr(a mesi.LineAddr) (region int, svc uint32, coreID int, idx int) {
	v := uint64(a)
	return int(v >> 56), uint32(v >> 24 & 0xffffffff), int(v >> 4 & 0xfffff), int(v & 0xf)
}

// kernelCtrl returns kernel ctrl line idx for a core.
func kernelCtrl(coreID, idx int) mesi.LineAddr { return lineAddr(regionKernel, 0, coreID, idx) }

// svcCtrl returns service ctrl line idx for a (service, core) channel.
func svcCtrl(svc uint32, coreID, idx int) mesi.LineAddr {
	return lineAddr(regionService, svc, coreID, idx)
}

// clientCtrl returns client-channel ctrl line idx for channel chanID on a
// core.
func clientCtrl(chanID uint32, coreID, idx int) mesi.LineAddr {
	return lineAddr(regionClient, chanID, coreID, idx)
}

// Markers in byte 0 of a control line returned by the NIC or written by
// the CPU.
const (
	// MarkerIdle is an empty line (initial state).
	MarkerIdle = 0x00
	// MarkerDispatch delivers an RPC request to a user-mode loop.
	MarkerDispatch = 0x01
	// MarkerKDispatch delivers a request to the kernel loop together
	// with the target service, asking the core to switch processes.
	MarkerKDispatch = 0x02
	// MarkerTryAgain unblocks a stalled load with no work (15 ms timeout,
	// or an explicit kick during descheduling).
	MarkerTryAgain = 0x03
	// MarkerRetire asks the polling loop to give up the core (NIC-driven
	// core reallocation, §5.2).
	MarkerRetire = 0x04
	// MarkerResponse is written by the CPU: the RPC response is in this
	// line (+ aux).
	MarkerResponse = 0x05

	// MarkerClientReq is written by the CPU into a client channel: an
	// outbound RPC request for the NIC to transmit.
	MarkerClientReq = 0x06
	// MarkerClientResp is the NIC's answer on a client channel: the
	// response to an outbound RPC.
	MarkerClientResp = 0x07

	// markerBufFlag, OR-ed into a dispatch or response marker, indicates
	// that the message body travels via a DMA buffer in host memory
	// rather than inline + aux cache lines (§6 large-message fallback).
	markerBufFlag = 0x80
)

// dispatchHeaderLen is the fixed part of a dispatch line:
// marker(1) svc(4) method(2) serial(8) code(8) data(8) bodyLen(2).
const dispatchHeaderLen = 1 + 4 + 2 + 8 + 8 + 8 + 2

// respHeaderLen is the fixed part of a response line:
// marker(1) status(2) bodyLen(2) serial(8).
const respHeaderLen = 1 + 2 + 2 + 8

// dispatchLine encodes a request dispatch into a control line of size
// lineSize. Body bytes beyond the inline capacity travel in aux lines
// (modelled by the NIC's side table; the timing is charged separately).
// Returns the line and the number of inline body bytes. The line is built
// into scr when its capacity allows — safe whenever the consumer copies it
// before the next build (the directory's deliver path does); callers that
// retain the line across simulated time must pass nil.
func dispatchLine(scr []byte, lineSize int, marker byte, svc uint32, method uint16, serial uint64,
	code, data uint64, body []byte) ([]byte, int) {
	if lineSize < dispatchHeaderLen {
		panic("core: line too small for dispatch header")
	}
	l := scratchLine(scr, lineSize)
	l[0] = marker
	binary.BigEndian.PutUint32(l[1:5], svc)
	binary.BigEndian.PutUint16(l[5:7], method)
	binary.BigEndian.PutUint64(l[7:15], serial)
	binary.BigEndian.PutUint64(l[15:23], code)
	binary.BigEndian.PutUint64(l[23:31], data)
	binary.BigEndian.PutUint16(l[31:33], uint16(len(body)))
	inline := copy(l[dispatchHeaderLen:], body)
	return l, inline
}

// parsedDispatch is a decoded dispatch line.
type parsedDispatch struct {
	Marker  byte
	Buf     bool // body is in a DMA buffer, not inline/aux
	Svc     uint32
	Method  uint16
	Serial  uint64
	Code    uint64
	Data    uint64
	BodyLen int
	Inline  []byte
}

// parseDispatchLine decodes a control line delivered by the NIC.
func parseDispatchLine(l []byte) parsedDispatch {
	if len(l) < dispatchHeaderLen {
		panic(fmt.Sprintf("core: short control line (%d bytes)", len(l)))
	}
	p := parsedDispatch{
		Marker:  l[0] &^ markerBufFlag,
		Buf:     l[0]&markerBufFlag != 0,
		Svc:     binary.BigEndian.Uint32(l[1:5]),
		Method:  binary.BigEndian.Uint16(l[5:7]),
		Serial:  binary.BigEndian.Uint64(l[7:15]),
		Code:    binary.BigEndian.Uint64(l[15:23]),
		Data:    binary.BigEndian.Uint64(l[23:31]),
		BodyLen: int(binary.BigEndian.Uint16(l[31:33])),
	}
	if !p.Buf {
		n := p.BodyLen
		if max := len(l) - dispatchHeaderLen; n > max {
			n = max
		}
		p.Inline = l[dispatchHeaderLen : dispatchHeaderLen+n]
	}
	return p
}

// markerLine builds a line carrying only a marker (TryAgain, Retire) into
// scr under the same copy-before-next-build contract as dispatchLine.
func markerLine(scr []byte, lineSize int, marker byte) []byte {
	l := scratchLine(scr, lineSize)
	l[0] = marker
	return l
}

// scratchLine returns a zeroed line of lineSize backed by scr when its
// capacity allows, allocating only on first use (or a size change).
func scratchLine(scr []byte, lineSize int) []byte {
	if cap(scr) < lineSize {
		return make([]byte, lineSize)
	}
	l := scr[:lineSize]
	clear(l)
	return l
}

// responseLine encodes the CPU's RPC response into a control line. The
// line is built into scr when its capacity allows, so a worker can reuse
// one scratch line per request; callers that retain the line must pass
// nil. The directory copies the line synchronously at Store-grant time,
// which is what makes the reuse safe.
func responseLine(scr []byte, lineSize int, status uint16, serial uint64, body []byte) ([]byte, int) {
	l := scratchLine(scr, lineSize)
	l[0] = MarkerResponse
	binary.BigEndian.PutUint16(l[1:3], status)
	binary.BigEndian.PutUint16(l[3:5], uint16(len(body)))
	binary.BigEndian.PutUint64(l[5:13], serial)
	inline := copy(l[respHeaderLen:], body)
	return l, inline
}

// responseBufLine encodes a response whose body sits in a DMA buffer:
// only status, length, and serial travel in the line.
func responseBufLine(scr []byte, lineSize int, status uint16, serial uint64, bodyLen int) []byte {
	l := scratchLine(scr, lineSize)
	l[0] = MarkerResponse | markerBufFlag
	binary.BigEndian.PutUint16(l[1:3], status)
	binary.BigEndian.PutUint16(l[3:5], uint16(bodyLen))
	binary.BigEndian.PutUint64(l[5:13], serial)
	return l
}

// clientReqHeaderLen is the fixed part of an outbound-request line:
// marker(1) svc(4) method(2) serial(8) dstIP(4) dstPort(2) bodyLen(2).
const clientReqHeaderLen = 1 + 4 + 2 + 8 + 4 + 2 + 2

// clientReqLine encodes an outbound RPC request into a control line.
func clientReqLine(lineSize int, svc uint32, method uint16, serial uint64,
	dstIP [4]byte, dstPort uint16, body []byte) ([]byte, int) {
	l := make([]byte, lineSize)
	l[0] = MarkerClientReq
	binary.BigEndian.PutUint32(l[1:5], svc)
	binary.BigEndian.PutUint16(l[5:7], method)
	binary.BigEndian.PutUint64(l[7:15], serial)
	copy(l[15:19], dstIP[:])
	binary.BigEndian.PutUint16(l[19:21], dstPort)
	binary.BigEndian.PutUint16(l[21:23], uint16(len(body)))
	inline := copy(l[clientReqHeaderLen:], body)
	return l, inline
}

// parsedClientReq is a decoded outbound-request line.
type parsedClientReq struct {
	Svc     uint32
	Method  uint16
	Serial  uint64
	DstIP   [4]byte
	DstPort uint16
	BodyLen int
	Inline  []byte
}

// parseClientReqLine decodes a request line recalled from a CPU cache.
// ok is false if the line does not hold an outbound request.
func parseClientReqLine(l []byte) (parsedClientReq, bool) {
	if len(l) < clientReqHeaderLen || l[0] != MarkerClientReq {
		return parsedClientReq{}, false
	}
	p := parsedClientReq{
		Svc:     binary.BigEndian.Uint32(l[1:5]),
		Method:  binary.BigEndian.Uint16(l[5:7]),
		Serial:  binary.BigEndian.Uint64(l[7:15]),
		DstPort: binary.BigEndian.Uint16(l[19:21]),
		BodyLen: int(binary.BigEndian.Uint16(l[21:23])),
	}
	copy(p.DstIP[:], l[15:19])
	n := p.BodyLen
	if max := len(l) - clientReqHeaderLen; n > max {
		n = max
	}
	p.Inline = l[clientReqHeaderLen : clientReqHeaderLen+n]
	return p, true
}

// clientRespLine encodes an inbound RPC response for delivery into a
// stalled client-channel load: marker(1) status(2) bodyLen(2) serial(8)
// inline body.
func clientRespLine(lineSize int, status uint16, serial uint64, body []byte) ([]byte, int) {
	l := make([]byte, lineSize)
	l[0] = MarkerClientResp
	binary.BigEndian.PutUint16(l[1:3], status)
	binary.BigEndian.PutUint16(l[3:5], uint16(len(body)))
	binary.BigEndian.PutUint64(l[5:13], serial)
	inline := copy(l[respHeaderLen:], body)
	return l, inline
}

// parsedResponse is a decoded response line.
type parsedResponse struct {
	Status  uint16
	Buf     bool // body is in a DMA buffer
	BodyLen int
	Serial  uint64
	Inline  []byte
}

// parseResponseLine decodes a response control line recalled from a CPU
// cache. ok is false if the line does not hold a response.
func parseResponseLine(l []byte) (parsedResponse, bool) {
	if len(l) < respHeaderLen || l[0]&^markerBufFlag != MarkerResponse {
		return parsedResponse{}, false
	}
	p := parsedResponse{
		Buf:     l[0]&markerBufFlag != 0,
		Status:  binary.BigEndian.Uint16(l[1:3]),
		BodyLen: int(binary.BigEndian.Uint16(l[3:5])),
		Serial:  binary.BigEndian.Uint64(l[5:13]),
	}
	if !p.Buf {
		n := p.BodyLen
		if max := len(l) - respHeaderLen; n > max {
			n = max
		}
		p.Inline = l[respHeaderLen : respHeaderLen+n]
	}
	return p, true
}
