package core

import (
	"fmt"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/mesi"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

// HostConfig parameterizes a Lauberhorn host: an OS kernel plus the NIC,
// joined by the coherent fabric.
type HostConfig struct {
	Cores   int
	FreqGHz float64
	Kernel  kernel.Costs
	NIC     Config

	// LoopOverhead is the per-iteration software cost of the receive loop
	// (evict + re-issue the load): a handful of instructions.
	LoopOverhead sim.Time
	// DispatchJump is the cost from the fill returning to the first
	// handler instruction: read code/data pointers out of the line and
	// jump (§4: "just the arguments and virtual address of the first
	// instruction").
	DispatchJump sim.Time
	// SchedPushCost is the posted-store cost of pushing one scheduling
	// update to the NIC; it is added to every context switch. Over ECI
	// this is a single line write; over PCIe it would be an MMIO write
	// (experiment E8 compares).
	SchedPushCost sim.Time

	// SoftwareCodec disables the NIC's RPC deserializer ablation-style:
	// the host pays Codec costs per request as the software stacks do
	// (experiment E10 "minus NIC decode").
	SoftwareCodec bool
	// Codec supplies the software (un)marshal cost model when
	// SoftwareCodec is set.
	Codec rpc.CostModel
}

// DefaultHostConfig returns the configuration used by the experiments.
func DefaultHostConfig(local wire.Endpoint, cores int) HostConfig {
	return HostConfig{
		Cores:         cores,
		FreqGHz:       2.5,
		Kernel:        kernel.DefaultCosts(),
		NIC:           DefaultConfig(local),
		LoopOverhead:  20 * sim.Nanosecond,
		DispatchJump:  15 * sim.Nanosecond,
		SchedPushCost: 60 * sim.Nanosecond,
		Codec:         rpc.DefaultCostModel(),
	}
}

// Host is a machine running Lauberhorn: kernel, NIC, per-core coherent
// caches, and the per-core worker threads that execute the Fig. 5 loops.
type Host struct {
	Sim *sim.Sim
	K   *kernel.Kernel
	NIC *NIC

	cfg      HostConfig
	caches   []*mesi.Cache
	registry *rpc.Registry
	procs    map[uint32]*kernel.Process
	workers  []*kernel.Thread

	// Served counts completed requests per service.
	served map[uint32]uint64
	// OnServed observes every served request (svc, rpc ID) just after
	// the response line is handed to the NIC.
	OnServed func(svc uint32, rpcID uint64)

	// async overrides methods with suspending handlers (nested RPC).
	async map[uint64]AsyncHandler
	// clientChans are the lazily-allocated per-core outbound channels.
	clientChans    map[int]*ClientChan
	nextCallSerial uint64
}

// AsyncHandler is a suspending request handler: it may consume CPU via tc
// and issue nested outbound RPCs (Host.Call) before invoking respond
// exactly once. coreID identifies the core the handler runs on (for
// Host.Call's channel).
type AsyncHandler func(tc *kernel.TC, coreID int, req []byte, respond func(status uint16, body []byte))

// NewHost builds the host. Call RegisterService for each service, then
// Start.
func NewHost(s *sim.Sim, cfg HostConfig) *Host {
	if cfg.Cores <= 0 {
		panic("core: host needs cores")
	}
	k := kernel.New(s, cfg.Cores, cfg.FreqGHz, cfg.Kernel)
	// Every context switch also pushes scheduling state to the NIC (§4).
	k.Costs.ContextSwitch += cfg.SchedPushCost
	n := NewNIC(s, cfg.NIC, cfg.Cores)
	h := &Host{
		Sim:         s,
		K:           k,
		NIC:         n,
		cfg:         cfg,
		registry:    rpc.NewRegistry(),
		procs:       make(map[uint32]*kernel.Process),
		served:      make(map[uint32]uint64),
		async:       make(map[uint64]AsyncHandler),
		clientChans: make(map[int]*ClientChan),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.caches = append(h.caches, mesi.NewCache(s, fmt.Sprintf("core%d", i),
			func(mesi.LineAddr) *mesi.Directory { return n.Directory() }))
	}
	k.SchedHook = func(coreID int, running *kernel.Thread) {
		pid := 0
		if running != nil {
			pid = running.Proc().PID
		}
		n.SchedUpdate(coreID, pid)
	}
	// The NIC reclaims a core when a service backs up with nobody
	// polling: ask an idle poller above its floor to retire.
	n.NotifyOS = func(svc uint32) { h.reclaimCore() }
	n.OnBacklog = func(svc uint32) { h.reclaimCore() }
	// Non-RPC work must not wait out a TryAgain period behind stalled
	// workers: when a thread is runnable and every core is parked in a
	// Lauberhorn wait, kick the idlest one so it yields within
	// microseconds (§5.2).
	k.EnqueueHook = func(t *kernel.Thread) { h.kickForRunnable() }
	return h
}

// kickForRunnable preempt-kicks one stalled worker (idle service poller
// preferred, else a kernel-line poller) so a runnable non-RPC thread gets
// a core promptly. Cores are scanned in ID order for determinism.
func (h *Host) kickForRunnable() {
	pick := -1
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		p := h.NIC.pendingOn(coreID)
		if p == nil {
			continue
		}
		region, svc, _, _ := splitAddr(p.addr)
		if region == regionClient {
			continue // mid-call; not reclaimable
		}
		if region == regionService {
			if ep := h.NIC.endpoints[svc]; ep != nil && len(ep.queue) > 0 {
				continue // busy service
			}
			pick = coreID
			break // idle user poller: best choice
		}
		if pick < 0 {
			pick = coreID // kernel poller: acceptable fallback
		}
	}
	if pick < 0 {
		return
	}
	t := h.workers[pick]
	h.K.Preempt(t)
	h.NIC.Kick(pick)
}

// Config returns the host configuration.
func (h *Host) Config() HostConfig { return h.cfg }

// Registry returns the host's RPC service registry.
func (h *Host) Registry() *rpc.Registry { return h.registry }

// Served returns completed requests for a service.
func (h *Host) Served(svc uint32) uint64 { return h.served[svc] }

// RegisterService installs a service: an OS process, registry entry, and
// the NIC endpoint (code/data pointers, demux key — the OS state the
// paper shares with the NIC).
func (h *Host) RegisterService(desc *rpc.ServiceDesc, port uint16, minWorkers int) *Endpoint {
	h.registry.Register(desc)
	proc := h.K.NewProcess(desc.Name)
	h.procs[desc.ID] = proc
	return h.NIC.RegisterService(desc, proc.PID, port, minWorkers)
}

// Start spawns one pinned kernel worker per core, each running the Fig. 5
// dispatch loop, and enables the NIC's retire policy.
func (h *Host) Start() {
	if len(h.workers) > 0 {
		panic("core: host already started")
	}
	h.NIC.RetirePolicy = true
	for i := 0; i < h.cfg.Cores; i++ {
		w := newWorker(h, i)
		t := h.K.SpawnPinned(kernel.KernelProc, fmt.Sprintf("lh-worker%d", w.coreID), w.coreID,
			w.enter)
		h.workers = append(h.workers, t)
	}
}

// Worker returns the worker thread for a core (valid after Start).
func (h *Host) Worker(coreID int) *kernel.Thread { return h.workers[coreID] }

// SetAsyncHandler replaces svc/method's plain handler with a suspending
// one that may issue nested RPCs before responding (§6: nested RPCs with
// a dedicated reply endpoint).
func (h *Host) SetAsyncHandler(svc uint32, method uint16, fn AsyncHandler) {
	if fn == nil {
		panic("core: nil async handler")
	}
	h.async[uint64(svc)<<16|uint64(method)] = fn
}

// SetSoftwareCodec enables the "minus NIC decode" ablation: the host pays
// the given software (un)marshal cost model per request, as the
// traditional stacks do.
func (h *Host) SetSoftwareCodec(c rpc.CostModel) {
	h.cfg.SoftwareCodec = true
	h.cfg.Codec = c
}

// SetDynamicScheduling toggles NIC-driven core reallocation: the retire
// policy and backlog-triggered reclamation. Disabling it is the E10
// "minus NIC-driven scheduling" ablation — cores keep polling whichever
// service they served first (static binding, as a bypass runtime would),
// and requests for unpolled services are only picked up when a core
// happens to pass through the kernel loop.
func (h *Host) SetDynamicScheduling(on bool) {
	h.NIC.RetirePolicy = on
	if on {
		h.NIC.NotifyOS = func(svc uint32) { h.reclaimCore() }
		h.NIC.OnBacklog = func(svc uint32) { h.reclaimCore() }
	} else {
		h.NIC.NotifyOS = nil
		h.NIC.OnBacklog = nil
	}
}

// Deschedule forcibly reclaims a core whose worker is stalled: IPI plus an
// immediate TryAgain kick (§5.1's clean descheduling of a blocked
// process).
func (h *Host) Deschedule(coreID int) {
	t := h.workers[coreID]
	h.K.Preempt(t)
	h.NIC.Kick(coreID)
}

// reclaimCore finds a core idling in a user-mode loop (stalled, service
// queue empty, above its endpoint's worker floor) and retires it so its
// worker returns to the kernel loop and picks up starved work. Cores are
// scanned in ID order for determinism.
func (h *Host) reclaimCore() {
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		p := h.NIC.pendingOn(coreID)
		if p == nil || p.kernel {
			continue
		}
		if region, _, _, _ := splitAddr(p.addr); region != regionService {
			// A client-channel wait (nested call in flight) is not a
			// reclaimable idle poller.
			continue
		}
		ep := h.NIC.endpoints[p.svc]
		if len(ep.queue) > 0 {
			continue // busy service; don't steal
		}
		if len(ep.waiters) <= ep.minWorkers {
			continue
		}
		h.NIC.RetireCore(coreID)
		return
	}
}

// ---- the Fig. 5 loops ----

// worker is one core's dispatch-loop state machine: the Fig. 5 kernel and
// user loops plus the serve path, flattened so every steady-state
// continuation is a closure bound once at construction and parameterized
// through the fields below. A core runs one request at a time, so the
// per-request fields are safe to reuse across iterations.
type worker struct {
	h      *Host
	tc     *kernel.TC
	coreID int
	cache  *mesi.Cache

	// loop position
	svc uint32 // service whose user loop the core runs
	cur int    // control-line index (0/1) the next poll loads

	// per-iteration state
	line []byte // last control line filled by the NIC

	// per-request (serve) state
	p        parsedDispatch
	respAddr mesi.LineAddr
	body     []byte
	handler  func(req []byte) (resp []byte, service sim.Time)
	status   uint16
	respBody []byte
	respLine []byte // response-line scratch, rebuilt per request
	auxStall sim.Time

	// continuations, bound once
	kIssue     func(func())
	kDone      func()
	kAgain     func()
	kEnter     func()
	uIssue     func(func())
	uDone      func()
	uAgain     func()
	onLoad     func([]byte)
	complete   func()
	runFn      func()
	handled    func()
	finishOK   func()
	respond    func(uint16, []byte)
	writeResp  func()
	storeIssue func(func())
	stored     func()
	afterServe func()
	auxIssue   func(func())
	yieldK     func(*kernel.TC)
}

// newWorker builds a core's loop state machine and binds its
// continuations.
func newWorker(h *Host, coreID int) *worker {
	w := &worker{h: h, coreID: coreID, cache: h.caches[coreID]}
	w.kIssue = func(complete func()) {
		w.complete = complete
		w.cache.Load(kernelCtrl(w.coreID, w.cur), w.onLoad)
	}
	w.uIssue = func(complete func()) {
		w.complete = complete
		w.cache.Load(svcCtrl(w.svc, w.coreID, w.cur), w.onLoad)
	}
	w.onLoad = func(data []byte) { w.line = data; w.complete() }
	w.kDone = w.kernelDone
	w.uDone = w.userDone
	w.kAgain = func() { w.cur ^= 1; w.kernelLoop() }
	w.uAgain = w.userLoop
	w.kEnter = w.enterService
	w.runFn = w.run
	w.handled = w.runHandler
	w.finishOK = w.finish
	w.respond = func(status uint16, respBody []byte) {
		w.status = status
		w.respBody = respBody
		w.finish()
	}
	w.writeResp = w.doWriteResp
	w.storeIssue = func(complete func()) {
		w.cache.Store(w.respAddr, w.respLine, complete)
	}
	w.stored = w.afterStore
	w.afterServe = func() { w.userLoop() }
	w.auxIssue = func(complete func()) {
		w.tc.Sim().After(w.auxStall, "lh-aux-stream", complete)
	}
	w.yieldK = func(tc2 *kernel.TC) {
		w.tc = tc2
		w.kernelLoop()
	}
	return w
}

// enter is the thread body: start in the kernel loop on line 0.
func (w *worker) enter(tc *kernel.TC) {
	w.tc = tc
	w.cur = 0
	w.kernelLoop()
}

// kernelLoop is the per-core kernel dispatch loop: stall on the kernel
// control line; on KDispatch, switch into the target process and serve.
//
//lhlint:hotpath
func (w *worker) kernelLoop() {
	tc := w.tc
	if tc.Thread().PreemptPending() {
		tc.Thread().ClearPreempt()
		tc.Yield(w.yieldK)
		return
	}
	w.cache.Evict(kernelCtrl(w.coreID, w.cur), nil)
	tc.StallOn(w.kIssue, w.kDone)
}

// kernelDone handles the kernel control line the NIC just filled.
//
//lhlint:hotpath
func (w *worker) kernelDone() {
	h := w.h
	tc := w.tc
	p := parseDispatchLine(w.line)
	switch p.Marker {
	case MarkerTryAgain, MarkerRetire:
		// Nothing to do; re-poll (this is where a conventional
		// kernel thread would run RCU callbacks, schedule(), etc.).
		tc.Run(h.cfg.LoopOverhead, cpu.Kernel, w.kAgain)
	case MarkerKDispatch:
		// Switch into the service's process and serve the request;
		// afterwards the core stays in the process's user loop.
		if h.procs[p.Svc] == nil {
			panicUnknownService("KDispatch for", p.Svc)
		}
		w.p = p
		cost := h.K.Costs.AddrSpaceSwitch + h.cfg.SchedPushCost
		tc.Run(cost, cpu.Kernel, w.kEnter)
	default:
		panicBadMarker(p.Marker, "kernel")
	}
}

// enterService finishes a KDispatch: assume the service's identity, then
// serve with the response expected on the service channel's line 0 (the
// NIC registered that expectation at dispatch); afterwards continue in the
// user loop on line 1.
func (w *worker) enterService() {
	h := w.h
	proc := h.procs[w.p.Svc]
	w.tc.Thread().SetProc(proc)
	h.NIC.SchedUpdate(w.coreID, proc.PID)
	w.svc = w.p.Svc
	w.respAddr = svcCtrl(w.p.Svc, w.coreID, 0)
	w.cur = 1
	w.serve()
}

// userLoop is the per-(service, core) user-mode loop: stall on the service
// control line; dispatches arrive with essentially zero software overhead.
//
//lhlint:hotpath
func (w *worker) userLoop() {
	tc := w.tc
	if tc.Thread().PreemptPending() {
		// Enter the kernel via a voluntary yield (the §5.2 "process can
		// voluntarily yield the CPU by executing a system call"). The
		// kernel first has the NIC flush any response still parked in
		// this channel — yielding without the flush would strand it in
		// this core's cache (see NIC.FlushChannel). Preemption is rare;
		// this path may allocate.
		tc.Thread().ClearPreempt()
		//lhlint:allow hotpath preemption path, off the steady-state poll loop
		tc.Syscall(0, func() {
			w.h.NIC.FlushChannel(w.svc, w.coreID)
			//lhlint:allow hotpath preemption path, off the steady-state poll loop
			w.leaveUser(func() {
				w.cur = 0
				w.tc.Yield(w.yieldK)
			})
		})
		return
	}
	w.cache.Evict(svcCtrl(w.svc, w.coreID, w.cur), nil)
	tc.StallOn(w.uIssue, w.uDone)
}

// userDone handles the service control line the NIC just filled.
//
//lhlint:hotpath
func (w *worker) userDone() {
	h := w.h
	tc := w.tc
	p := parseDispatchLine(w.line)
	switch p.Marker {
	case MarkerTryAgain:
		tc.Run(h.cfg.LoopOverhead, cpu.User, w.uAgain)
	case MarkerRetire:
		// The NIC wants this core for a starved service: return to
		// the kernel loop. Rare; may allocate.
		//lhlint:allow hotpath retire is a scheduling transition, not the steady-state serve path
		w.leaveUser(func() {
			w.cur = 0
			w.tc.Run(h.cfg.LoopOverhead, cpu.Kernel, w.kernelLoop)
		})
	case MarkerDispatch:
		w.p = p
		w.respAddr = svcCtrl(w.svc, w.coreID, w.cur)
		w.cur ^= 1
		w.serve()
	default:
		panicBadMarker(p.Marker, "service")
	}
}

// leaveUser switches the worker back to the kernel's identity, charging
// the crossing plus the scheduler push.
func (w *worker) leaveUser(then func()) {
	h := w.h
	//lhlint:allow hotpath deschedule transitions are rare; the closure carries the caller's continuation
	w.tc.Run(h.K.Costs.AddrSpaceSwitch/2+h.cfg.SchedPushCost, cpu.Kernel, func() {
		w.tc.Thread().SetProc(kernel.KernelProc)
		h.NIC.SchedUpdate(w.coreID, 0)
		then()
	})
}

// serve executes one dispatched request (w.p): jump to the handler, stream
// any aux lines, run the handler, write the response line (+ aux), and
// load the paired line so the NIC can recall and transmit the response.
//
//lhlint:hotpath
func (w *worker) serve() {
	h := w.h
	p := &w.p
	svcDesc := h.registry.Lookup(p.Svc)
	if svcDesc == nil {
		panicUnknownService("dispatched", p.Svc)
	}
	m := svcDesc.Method(p.Method)
	if m == nil {
		panicUnknownMethod(p.Method)
	}
	w.handler = m.Handler
	// Reassemble the body: for buffer dispatches it is already in host
	// memory (the NIC DMA'd it before answering the load); otherwise
	// inline bytes from the control line plus aux lines (streamed,
	// pipelined fills).
	w.body = p.Inline
	w.auxStall = 0
	switch {
	case p.Buf:
		w.body = h.NIC.DMABody(p.Serial)
	case p.BodyLen > len(p.Inline):
		aux := h.NIC.AuxBody(p.Serial)
		full := make([]byte, 0, p.BodyLen)
		full = append(full, p.Inline...)
		full = append(full, aux...)
		w.body = full
		w.auxStall = sim.Time(h.NIC.AuxLines(p.BodyLen)) * h.cfg.NIC.Fabric.PerLineStream
	}
	if w.auxStall > 0 {
		w.tc.StallOn(w.auxIssue, w.runFn)
	} else {
		w.run()
	}
}

// run charges the dispatch jump (plus the software-codec ablation's
// unmarshal cost) and continues into the handler.
//
//lhlint:hotpath
func (w *worker) run() {
	h := w.h
	var swDecode sim.Time
	if h.cfg.SoftwareCodec {
		// Ablation: without the NIC deserializer, the host pays software
		// unmarshal/marshal like the other stacks.
		swDecode = h.cfg.Codec.Unmarshal(len(w.body)) + h.cfg.Codec.DispatchLookup
	}
	w.tc.Run(h.cfg.DispatchJump+swDecode, cpu.User, w.handled)
}

// runHandler executes the request handler (or hands off to a suspending
// async handler) and charges its service time.
//
//lhlint:hotpath
func (w *worker) runHandler() {
	h := w.h
	p := &w.p
	// Suspending handler (nested RPC) takes precedence.
	if fn := h.async[uint64(p.Svc)<<16|uint64(p.Method)]; fn != nil {
		fn(w.tc, w.coreID, w.body, w.respond)
		return
	}
	respBody, service := w.handler(w.body)
	if h.cfg.SoftwareCodec {
		service += h.cfg.Codec.Marshal(len(respBody))
	}
	w.status = rpc.StatusOK
	w.respBody = respBody
	w.tc.Run(service, cpu.User, w.finishOK)
}

// finish writes the response (w.status, w.respBody) into the channel line
// (or a DMA buffer) and resumes the loop.
//
//lhlint:hotpath
func (w *worker) finish() {
	h := w.h
	p := &w.p
	respBody := w.respBody
	var auxCost sim.Time
	thr := h.cfg.NIC.DMAThreshold
	if thr > 0 && len(respBody) >= thr {
		// Large response: leave it in a DMA buffer; the NIC pulls
		// it. Host cost is just the descriptor write.
		h.NIC.WriteDMAResponse(p.Serial, respBody)
		w.respLine = responseBufLine(w.respLine, h.NIC.lineSize(), w.status, p.Serial, len(respBody))
		auxCost = 50 * sim.Nanosecond
	} else {
		var inline int
		w.respLine, inline = responseLine(w.respLine, h.NIC.lineSize(), w.status, p.Serial, respBody)
		if inline < len(respBody) {
			h.NIC.WriteAuxResponse(p.Serial, respBody[inline:])
			auxCost = sim.Time(h.NIC.AuxLines(len(respBody))) * h.cfg.NIC.Fabric.PerLineStream
		}
	}
	if auxCost > 0 {
		w.tc.Run(auxCost, cpu.User, w.writeResp)
	} else {
		w.doWriteResp()
	}
}

// doWriteResp stores the response line into the channel; the directory
// copies it when ownership is granted, and the worker stalls until then,
// so the scratch line is free for the next request by the time it runs.
//
//lhlint:hotpath
func (w *worker) doWriteResp() {
	w.tc.StallOn(w.storeIssue, w.stored)
}

// panicUnknownService, panicUnknownMethod, and panicBadMarker keep the
// fmt boxing of fatal-dispatch panics off the loop hot paths; none of
// them returns.
func panicUnknownService(what string, svc uint32) {
	panic(fmt.Sprintf("core: %s unknown service %d", what, svc))
}

func panicUnknownMethod(method uint16) {
	panic(fmt.Sprintf("core: dispatched unknown method %d", method))
}

func panicBadMarker(m byte, line string) {
	panic(fmt.Sprintf("core: unexpected marker %d on %s line", m, line))
}

// afterStore counts the served request and resumes the user loop.
//
//lhlint:hotpath
func (w *worker) afterStore() {
	h := w.h
	h.served[w.p.Svc]++
	if h.OnServed != nil {
		h.OnServed(w.p.Svc, w.p.Serial)
	}
	w.tc.Run(h.cfg.LoopOverhead, cpu.User, w.afterServe)
}
