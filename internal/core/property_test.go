package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/fabric"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
)

// propRig builds a multi-service Lauberhorn host and returns helpers for
// randomized request injection.
func propRig(seed uint64, nCores, nSvcs int) (*sim.Sim, *Host, *testClient) {
	s := sim.New(seed)
	h := NewHost(s, DefaultHostConfig(serverEP, nCores))
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, h.NIC)
	h.NIC.AttachLink(link, 1)
	for i := 0; i < nSvcs; i++ {
		id := uint32(i + 1)
		h.RegisterService(&rpc.ServiceDesc{ID: id, Name: fmt.Sprintf("s%d", id),
			Methods: []rpc.MethodDesc{{
				ID: 1,
				Handler: func(req []byte) ([]byte, sim.Time) {
					return req, 300 * sim.Nanosecond
				},
			}}}, 9000+uint16(i), 0)
	}
	h.Start()
	return s, h, client
}

// Property: under any random pattern of services, sizes and inter-arrival
// gaps (moderate load), every request is eventually answered with its
// exact payload.
func TestAllRequestsServedProperty(t *testing.T) {
	type req struct {
		Svc  uint8
		Size uint16
		Gap  uint16 // microseconds, capped
	}
	f := func(reqs []req, seed uint64) bool {
		if len(reqs) > 40 {
			reqs = reqs[:40]
		}
		const nSvcs = 5
		s, h, client := propRig(seed, 2, nSvcs)
		s.RunUntil(sim.Millisecond)
		payloads := map[uint64][]byte{}
		at := s.Now()
		for i, r := range reqs {
			id := uint64(i + 1)
			svc := uint32(int(r.Svc)%nSvcs) + 1
			size := int(r.Size) % 2000
			body := make([]byte, size)
			for j := range body {
				body[j] = byte(j*int(id) + 1)
			}
			payloads[id] = body
			at += sim.Time(r.Gap%200) * sim.Microsecond
			svcCopy, bodyCopy := svc, body
			s.At(at, "send", func() {
				client.send(t, 9000+uint16(svcCopy-1), svcCopy, 1, id, bodyCopy)
			})
		}
		// Generous horizon: even TryAgain-period waits resolve.
		s.RunUntil(at + 100*sim.Millisecond)
		if len(client.resps) != len(reqs) {
			t.Logf("served %d of %d (seed %d)", len(client.resps), len(reqs), seed)
			return false
		}
		for _, m := range client.resps {
			if m.Status != rpc.StatusOK {
				return false
			}
			if !bytes.Equal(m.Body, payloads[m.ID]) {
				t.Logf("payload mismatch for id %d", m.ID)
				return false
			}
		}
		_ = h
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: NIC telemetry arrivals always equal fast+kernel dispatches
// plus still-queued plus dropped, for any served workload at quiescence.
func TestTelemetryConservationProperty(t *testing.T) {
	f := func(nReq uint8, seed uint64) bool {
		n := int(nReq%30) + 1
		s, h, client := propRig(seed, 1, 3)
		s.RunUntil(sim.Millisecond)
		at := s.Now()
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			svc := uint32(i%3) + 1
			at += 50 * sim.Microsecond
			svcCopy := svc
			s.At(at, "send", func() {
				client.send(t, 9000+uint16(svcCopy-1), svcCopy, 1, id, []byte("x"))
			})
		}
		s.RunUntil(at + 100*sim.Millisecond)
		var arrivals, dispatched, dropped uint64
		for svc := uint32(1); svc <= 3; svc++ {
			tl := h.NIC.Telemetry(svc)
			if tl == nil {
				continue
			}
			arrivals += tl.Arrivals
			dispatched += tl.Fast + tl.ViaKernel
			dropped += tl.Dropped
		}
		return arrivals == uint64(n) && dispatched+dropped == arrivals
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy accounting is conserved — total residency across all
// states equals elapsed time, for every core, under random load.
func TestResidencyConservationProperty(t *testing.T) {
	f := func(nReq uint8, seed uint64) bool {
		n := int(nReq%20) + 1
		s, h, client := propRig(seed, 3, 4)
		s.RunUntil(sim.Millisecond)
		at := s.Now()
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			svc := uint32(i%4) + 1
			at += 20 * sim.Microsecond
			svcCopy := svc
			s.At(at, "send", func() {
				client.send(t, 9000+uint16(svcCopy-1), svcCopy, 1, id, []byte("y"))
			})
		}
		end := at + 20*sim.Millisecond
		s.RunUntil(end)
		for _, c := range h.K.Cores() {
			var total sim.Time
			for st := 0; st < cpu.NumStates; st++ {
				total += c.Residency(cpu.State(st))
			}
			if total != end {
				t.Logf("core %d residency %v != elapsed %v", c.ID(), total, end)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue overflow drops exactly the excess and never wedges the
// service.
func TestQueueOverflowProperty(t *testing.T) {
	s := sim.New(5)
	cfg := DefaultHostConfig(serverEP, 1)
	cfg.NIC.SvcQueueDepth = 4
	h := NewHost(s, cfg)
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, h.NIC)
	h.NIC.AttachLink(link, 1)
	// A slow service so the queue builds.
	h.RegisterService(&rpc.ServiceDesc{ID: 1, Name: "slow", Methods: []rpc.MethodDesc{{
		ID: 1, Handler: func(req []byte) ([]byte, sim.Time) { return req, 200 * sim.Microsecond },
	}}}, 9000, 0)
	h.Start()
	s.RunUntil(sim.Millisecond)

	// Burst far beyond depth 4 + 1 in service.
	const n = 20
	for i := 0; i < n; i++ {
		client.send(t, 9000, 1, 1, uint64(i+1), []byte("z"))
	}
	s.RunUntil(sim.Second)
	st := h.NIC.Stats()
	if st.RxDropped == 0 {
		t.Fatal("no drops despite tiny queue")
	}
	if uint64(len(client.resps))+st.RxDropped != n {
		t.Fatalf("served %d + dropped %d != %d", len(client.resps), st.RxDropped, n)
	}
	// Service still works after the burst drained.
	client.send(t, 9000, 1, 1, 999, []byte("after"))
	s.RunUntil(2 * sim.Second)
	found := false
	for _, m := range client.resps {
		if m.ID == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("service wedged after overflow")
	}
}
