package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"lauberhorn/internal/lint"
)

// The fixture tests pin each analyzer against small intentionally-broken
// packages under testdata/src. Expectations ride on the offending lines
// as `// want "regex"` comments; every diagnostic must match a want on
// its line and every want must be hit, so both false negatives and false
// positives fail the test.

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type wantKey struct {
	file string
	line int
}

func testFixture(t *testing.T, dir, asPath string) {
	t.Helper()
	fset, pkg, err := lint.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := map[wantKey][]*regexp.Regexp{}
	total := 0
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				wants[wantKey{pos.Filename, pos.Line}] = append(wants[wantKey{pos.Filename, pos.Line}], re)
				total++
			}
		}
	}
	diags := lint.RunPackage(fset, pkg, asPath, lint.Suite())
	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		hit := false
		for _, re := range wants[wantKey{d.File, d.Line}] {
			if re.MatchString(d.Message) {
				matched[re] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if len(matched) != total {
		for key, res := range wants {
			for _, re := range res {
				if !matched[re] {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, re)
				}
			}
		}
	}
}

func TestDetMapFixture(t *testing.T) {
	testFixture(t, "detmap", "lauberhorn/internal/experiments")
}

func TestDetSourceFixture(t *testing.T) {
	testFixture(t, "detsource", "lauberhorn/internal/core")
}

func TestGoroutineFixture(t *testing.T) {
	testFixture(t, "goroutine", "lauberhorn/internal/fabric")
}

func TestHotPathFixture(t *testing.T) {
	testFixture(t, "hotpath", "lauberhorn/internal/sim")
}

// TestGoroutineSanctioned is the golden fixture for the sanctioned-package
// list: the same go-statement-and-WaitGroup fixture that fails under
// internal/fabric must be completely silent when analyzed as the shard
// executor package (or the Runner), because those packages are on the
// analyzer's explicit allow list — not because of any //lhlint:allow
// annotation in the source.
func TestGoroutineSanctioned(t *testing.T) {
	fset, pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "goroutine"))
	if err != nil {
		t.Fatal(err)
	}
	for _, asPath := range []string{
		"lauberhorn/internal/sim/shard",
		"lauberhorn/internal/experiments",
	} {
		diags := lint.RunPackage(fset, pkg, asPath, []*lint.Analyzer{lint.Goroutine})
		if len(diags) != 0 {
			t.Errorf("goroutine fired inside sanctioned package %s: %v", asPath, diags)
		}
	}
}

// TestDetMapScoping double-checks the path scoping: the same map-ranging
// fixture is silent when analyzed under a package outside the
// determinism-critical set.
func TestDetMapScoping(t *testing.T) {
	fset, pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "detmap"))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunPackage(fset, pkg, "lauberhorn/internal/trace", []*lint.Analyzer{lint.DetMap})
	if len(diags) != 0 {
		t.Fatalf("detmap fired outside its package set: %v", diags)
	}
}

// TestModuleClean is the self-application gate: lhlint over this
// repository must report nothing. It loads and type-checks the whole
// module, so it is skipped in -short runs.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	m, err := lint.LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(m, lint.Suite())
	for _, d := range diags {
		t.Errorf("lhlint finding on clean tree: %s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or annotate them with //lhlint:allow <analyzer> <reason>")
	}
}

func ExampleDiagnostic_String() {
	d := lint.Diagnostic{File: "internal/sim/sim.go", Line: 10, Col: 2,
		Analyzer: "detmap", Message: "range over map[string]int"}
	fmt.Println(d)
	// Output: internal/sim/sim.go:10:2: [detmap] range over map[string]int
}
