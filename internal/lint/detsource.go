package lint

import (
	"go/ast"
	"strings"
)

// DetSource flags nondeterministic inputs in model and experiment code:
// wall-clock reads, the global math/rand generators, and environment
// lookups. Simulated time comes from sim.Time and randomness from the
// per-universe RNG streams, so any of these in internal/ packages either
// breaks replayability or silently forks behavior between runs.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "forbids wall-clock time, math/rand, and environment reads in model code",
	Applies: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "lauberhorn/internal/")
	},
	Run: runDetSource,
}

// detBanned maps package path -> banned member -> steer text. An empty
// member set ("*") bans every reference to the package.
var detBanned = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock read; use the simulator clock (sim.Time)",
		"Since":     "wall-clock read; use the simulator clock (sim.Time)",
		"Until":     "wall-clock read; use the simulator clock (sim.Time)",
		"Sleep":     "wall-clock wait; schedule a sim event instead",
		"After":     "wall-clock timer; schedule a sim event instead",
		"Tick":      "wall-clock ticker; schedule a sim event instead",
		"NewTimer":  "wall-clock timer; schedule a sim event instead",
		"NewTicker": "wall-clock ticker; schedule a sim event instead",
		"AfterFunc": "wall-clock timer; schedule a sim event instead",
	},
	"math/rand": {
		"*": "unseeded process-global randomness; use the per-universe sim.RNG streams",
	},
	"math/rand/v2": {
		"*": "unseeded process-global randomness; use the per-universe sim.RNG streams",
	},
	"os": {
		"Getenv":    "environment-derived behavior; thread configuration through explicit parameters",
		"LookupEnv": "environment-derived behavior; thread configuration through explicit parameters",
		"Environ":   "environment-derived behavior; thread configuration through explicit parameters",
		"ExpandEnv": "environment-derived behavior; thread configuration through explicit parameters",
	},
}

func runDetSource(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			members, banned := detBanned[obj.Pkg().Path()]
			if !banned {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn) resolve to the package too;
			// keep them covered — a seeded *rand.Rand still isn't one of the
			// universe's RNG streams.
			steer, hit := members[obj.Name()]
			if !hit {
				steer, hit = members["*"]
			}
			if hit {
				p.Reportf(id.Pos(), "%s.%s: %s (or annotate //lhlint:allow detsource <reason>)",
					obj.Pkg().Path(), obj.Name(), steer)
			}
			return true
		})
	}
}
