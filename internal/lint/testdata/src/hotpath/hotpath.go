// Package hotpath is a lint fixture: functions annotated
// //lhlint:hotpath must not contain allocating or boxing constructs.
package hotpath

type counter struct {
	n     int
	names []string
	idx   map[string]int
}

func sink(v any) { _ = v }

//lhlint:hotpath
func (c *counter) closureCapture(k int) func() int {
	return func() int { // want "closure captures"
		return c.n + k
	}
}

//lhlint:hotpath
func (c *counter) box(v int) any {
	return v // want "boxes on the hot path"
}

//lhlint:hotpath
func callBox(n int) {
	sink(n) // want "boxes on the hot path"
}

//lhlint:hotpath
func (c *counter) appendLoop(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v) // want "append inside a loop without preallocated capacity"
	}
	return out
}

//lhlint:hotpath
func (c *counter) makeMap() {
	c.idx = make(map[string]int) // want "make.map. allocates"
}

//lhlint:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// appendPrealloc is the sanctioned loop shape: capacity sized up front.
//
//lhlint:hotpath
func (c *counter) appendPrealloc(vs []int) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

// unannotated may do all of these things freely.
func unannotated(vs []int) any {
	var out []int
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

// speaker/holder exercise the stored-interface-field check: dispatching
// through an interface field re-discovers the driver per event, while a
// prebound func field (the function-table shape) is sanctioned.
type speaker interface{ speak(int) int }

type holder struct {
	s speaker
	f func(int) int
}

//lhlint:hotpath
func (h *holder) viaInterfaceField(v int) int {
	return h.s.speak(v) // want "interface method call on stored field"
}

//lhlint:hotpath
func (h *holder) viaFuncTable(v int) int {
	return h.f(v)
}

// Interface-typed parameters don't persist across events, so there is no
// provision-time moment to bind them: out of scope.
//
//lhlint:hotpath
func viaParam(s speaker, v int) int {
	return s.speak(v)
}
