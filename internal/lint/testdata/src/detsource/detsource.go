// Package detsource is a lint fixture analyzed as if it were a model
// package under lauberhorn/internal/: wall-clock time, global math/rand,
// and environment reads are forbidden.
package detsource

import (
	"math/rand"
	"os"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now: wall-clock read"
}

func jitter() int {
	return rand.Intn(8) // want "math/rand.Intn: unseeded process-global randomness"
}

func debugging() bool {
	return os.Getenv("LH_DEBUG") != "" // want "os.Getenv: environment-derived behavior"
}

// tick uses a time constant, which carries no nondeterminism.
const tick = time.Millisecond

//lhlint:allow detsource fixture shows a reasoned suppression on the line below
func allowed() time.Time { return time.Now() }
