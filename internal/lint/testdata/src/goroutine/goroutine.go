// Package goroutine is a lint fixture analyzed as if it were
// lauberhorn/internal/fabric: go statements and sync primitives are
// forbidden in single-threaded model code.
package goroutine

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup // want "sync.WaitGroup outside"
	for _, w := range work {
		wg.Add(1)
		go func() { // want "go statement outside"
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

// serial is the sanctioned form: just run the work in order.
func serial(work []func()) {
	for _, w := range work {
		w()
	}
}
