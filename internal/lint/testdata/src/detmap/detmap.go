// Package detmap is a lint fixture analyzed as if it were
// lauberhorn/internal/experiments: map iteration is forbidden unless
// annotated.
package detmap

// sum feeds map iteration order straight into an accumulated result.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is randomized"
		total += v
	}
	return total
}

// keys shows the sanctioned form: iterate under an allow, sort at the
// caller.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//lhlint:allow detmap keys are sorted by the caller before any output
	for k := range m {
		out = append(out, k)
	}
	return out
}

// overSlice ranges over a slice, which is always ordered and always fine.
func overSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
