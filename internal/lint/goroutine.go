package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroutineSanctioned lists the packages allowed to start goroutines and
// touch sync primitives. Model code is single-threaded by contract —
// distinct Sim instances on distinct goroutines share nothing — so
// concurrency is confined to an explicit sanctioned set rather than
// waived per-site with //lhlint:allow: a new concurrent package is a
// design decision and must be added here, in review, not annotated away
// at the call site.
//
//   - internal/experiments: the Runner fans experiment processes out
//     across worker goroutines; each owns a whole universe.
//   - internal/sim/shard: the conservative-window executor runs one
//     worker goroutine per shard Sim, synchronized purely by channel
//     happens-before at window barriers.
var goroutineSanctioned = map[string]bool{
	"lauberhorn/internal/experiments": true,
	"lauberhorn/internal/sim/shard":   true,
}

// Goroutine confines concurrency to the sanctioned packages above plus
// the command-line harnesses. go statements and sync primitives anywhere
// else in internal/ are rejected outright.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "forbids go statements and sync primitives outside sanctioned packages and cmd/",
	Applies: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "lauberhorn/internal/") &&
			!goroutineSanctioned[pkgPath]
	},
	Run: runGoroutine,
}

func runGoroutine(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(),
					"go statement outside sanctioned packages and cmd/: model code is single-threaded by contract")
			case *ast.Ident:
				obj := p.Pkg.Info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				pkgPath := obj.Pkg().Path()
				if pkgPath != "sync" && pkgPath != "sync/atomic" {
					return true
				}
				// Skip method references (mu.Lock and friends): the mutex is
				// already flagged once where its type is named.
				if fn, ok := obj.(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
				}
				p.Reportf(n.Pos(),
					"%s.%s outside sanctioned packages and cmd/: concurrency is confined to the Runner and the shard executor",
					pkgPath, obj.Name())
			}
			return true
		})
	}
}
