package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goroutine confines concurrency to the experiment Runner and the
// command-line harnesses. Model code is single-threaded by contract —
// distinct Sim instances on distinct goroutines share nothing — and
// ROADMAP item 1 (intra-universe sharding) depends on that staying true:
// when a sharding layer lands, internal/experiments must be the only
// place a goroutine can start. go statements and sync primitives
// anywhere else in internal/ are therefore rejected outright.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "forbids go statements and sync primitives outside the Runner and cmd/",
	Applies: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "lauberhorn/internal/") &&
			pkgPath != "lauberhorn/internal/experiments"
	},
	Run: runGoroutine,
}

func runGoroutine(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(),
					"go statement outside internal/experiments and cmd/: model code is single-threaded by contract")
			case *ast.Ident:
				obj := p.Pkg.Info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				pkgPath := obj.Pkg().Path()
				if pkgPath != "sync" && pkgPath != "sync/atomic" {
					return true
				}
				// Skip method references (mu.Lock and friends): the mutex is
				// already flagged once where its type is named.
				if fn, ok := obj.(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
				}
				p.Reportf(n.Pos(),
					"%s.%s outside internal/experiments and cmd/: concurrency is confined to the Runner (future sharding enters there)",
					pkgPath, obj.Name())
			}
			return true
		})
	}
}
