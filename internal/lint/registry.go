package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Registry cross-checks the experiment registry against its operational
// paperwork: every experiment registered in internal/experiments must
// have an EXPERIMENTS.md catalog row whose "Pinned by" column names at
// least one test function that actually exists, and every catalog row
// must correspond to a registered experiment. This replaces the
// stringly-typed half of scripts/docs_lint.sh with a typed check over the
// parsed registry and the parsed test files.
var Registry = &Analyzer{
	Name:      "registry",
	Doc:       "every registered experiment has an EXPERIMENTS.md row and an existing pinning test",
	RunModule: runRegistry,
}

const experimentsDoc = "EXPERIMENTS.md"

// regEntry is one experiment registration site.
type regEntry struct {
	ID   string
	File string
	Line int
	Col  int
}

// mdRow is one parsed EXPERIMENTS.md table row.
type mdRow struct {
	ID    string
	Tests []string
	Line  int
}

func runRegistry(m *Module, report func(Diagnostic)) {
	pkg := m.byPath[m.Path+"/internal/experiments"]
	if pkg == nil {
		return // nothing to cross-check in this module
	}
	entries := registryEntries(m, pkg)
	if len(entries) == 0 {
		report(Diagnostic{File: pkg.Dir, Line: 1, Col: 1,
			Message: "no experiment registrations found in internal/experiments; the registry analyzer cannot cross-check " + experimentsDoc})
		return
	}
	content, err := os.ReadFile(filepath.Join(m.Root, experimentsDoc))
	if err != nil {
		report(Diagnostic{File: experimentsDoc, Line: 1, Col: 1,
			Message: fmt.Sprintf("cannot read %s: %v", experimentsDoc, err)})
		return
	}
	rows := experimentsRows(string(content))
	for _, d := range checkRegistry(entries, rows, moduleTestFuncs(m)) {
		report(d)
	}
}

// registryEntries extracts every Experiment literal carrying an ID field
// from the experiments package.
func registryEntries(m *Module, pkg *Package) []regEntry {
	var out []regEntry
	idRE := regexp.MustCompile(`^e[0-9]+$`)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if tv, ok := pkg.Info.Types[lit]; !ok || !strings.HasSuffix(tv.Type.String(), "Experiment") {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "ID" {
					continue
				}
				bl, ok := kv.Value.(*ast.BasicLit)
				if !ok {
					continue
				}
				id, err := strconv.Unquote(bl.Value)
				if err != nil || !idRE.MatchString(id) {
					continue
				}
				pos := m.Fset.Position(kv.Pos())
				out = append(out, regEntry{ID: id, File: pos.Filename, Line: pos.Line, Col: pos.Column})
			}
			return true
		})
	}
	return out
}

var backtickedTest = regexp.MustCompile("`(Test[A-Za-z0-9_]*)`")

// experimentsRows parses the catalog table: rows whose first cell is an
// e-number; the backticked Test names anywhere in the row are its
// pinning tests.
func experimentsRows(content string) []mdRow {
	var out []mdRow
	rowRE := regexp.MustCompile(`^\|\s*(e[0-9]+)\s*\|`)
	for i, line := range strings.Split(content, "\n") {
		match := rowRE.FindStringSubmatch(line)
		if match == nil {
			continue
		}
		row := mdRow{ID: match[1], Line: i + 1}
		for _, t := range backtickedTest.FindAllStringSubmatch(line, -1) {
			row.Tests = append(row.Tests, t[1])
		}
		out = append(out, row)
	}
	return out
}

// moduleTestFuncs collects every declared TestXxx function name across
// the module's _test.go files.
func moduleTestFuncs(m *Module) map[string]bool {
	tests := map[string]bool{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.TestFiles {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Test") {
					tests[fd.Name.Name] = true
				}
			}
		}
	}
	return tests
}

// checkRegistry is the pure cross-check over registrations, catalog rows,
// and existing test names.
func checkRegistry(entries []regEntry, rows []mdRow, tests map[string]bool) []Diagnostic {
	var out []Diagnostic
	rowByID := map[string]mdRow{}
	for _, r := range rows {
		if prev, dup := rowByID[r.ID]; dup {
			out = append(out, Diagnostic{File: experimentsDoc, Line: r.Line, Col: 1,
				Message: fmt.Sprintf("duplicate %s row for %s (first at line %d)", experimentsDoc, r.ID, prev.Line)})
			continue
		}
		rowByID[r.ID] = r
	}
	registered := map[string]bool{}
	for _, e := range entries {
		registered[e.ID] = true
		row, ok := rowByID[e.ID]
		if !ok {
			out = append(out, Diagnostic{File: e.File, Line: e.Line, Col: e.Col,
				Message: fmt.Sprintf("experiment %s is registered but has no %s catalog row", e.ID, experimentsDoc)})
			continue
		}
		if len(row.Tests) == 0 {
			out = append(out, Diagnostic{File: experimentsDoc, Line: row.Line, Col: 1,
				Message: fmt.Sprintf("catalog row for %s names no pinning test (backticked TestXxx) in its Pinned-by column", e.ID)})
			continue
		}
		exists := false
		var missing []string
		for _, t := range row.Tests {
			if tests[t] {
				exists = true
			} else {
				missing = append(missing, t)
			}
		}
		if !exists {
			out = append(out, Diagnostic{File: experimentsDoc, Line: row.Line, Col: 1,
				Message: fmt.Sprintf("catalog row for %s: none of its pinning tests exist (%s)", e.ID, strings.Join(missing, ", "))})
		} else if len(missing) > 0 {
			out = append(out, Diagnostic{File: experimentsDoc, Line: row.Line, Col: 1,
				Message: fmt.Sprintf("catalog row for %s names nonexistent pinning test %s", e.ID, strings.Join(missing, ", "))})
		}
	}
	var ids []string
	for id := range rowByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !registered[id] {
			row := rowByID[id]
			out = append(out, Diagnostic{File: experimentsDoc, Line: row.Line, Col: 1,
				Message: fmt.Sprintf("catalog row for %s does not match any registered experiment", id)})
		}
	}
	return out
}
