package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath checks functions annotated //lhlint:hotpath for constructs
// that allocate or box. The annotation is seeded on the event-queue
// schedule/fire/cancel path, NIC tx/rx, the MESI line tables, and stats
// recording — the paths whose 0 allocs/op contract the internal/sim
// benchmarks pin. Flagged constructs:
//
//   - function literals capturing variables (each call allocates a
//     context struct),
//   - implicit conversions of concrete values to interface types
//     (boxing),
//   - append inside a loop to a slice with no preallocated capacity,
//   - string concatenation,
//   - map literals and make(map) (a map header per call),
//   - interface method calls on stored interface-typed fields (per-event
//     itable dispatch that a function table bound at provision time
//     avoids; calling a prebound func-typed field is the sanctioned
//     shape).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "rejects allocating/boxing constructs in //lhlint:hotpath functions",
	Run:  runHotPath,
}

// hotAnnotated reports whether the function's doc comment carries the
// //lhlint:hotpath annotation.
func hotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lhlint:")
		if ok && strings.TrimSpace(rest) == "hotpath" {
			return true
		}
	}
	return false
}

func runHotPath(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotAnnotated(fd) {
				continue
			}
			c := &hotChecker{p: p, fn: fd, info: p.Pkg.Info}
			c.prepass()
			c.check()
		}
	}
}

// hotChecker checks one annotated function.
type hotChecker struct {
	p    *Pass
	fn   *ast.FuncDecl
	info *types.Info

	loops []posRange     // bodies of for/range statements
	lits  []*ast.FuncLit // function literals, in traversal order
}

type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return r.lo <= p && p < r.hi }

// prepass records loop-body and closure extents so the main walk can
// answer "is this inside a loop?" and "which signature does this return
// to?" by position.
func (c *hotChecker) prepass() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			c.loops = append(c.loops, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			c.loops = append(c.loops, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.FuncLit:
			c.lits = append(c.lits, n)
		}
		return true
	})
}

func (c *hotChecker) inLoop(p token.Pos) bool {
	for _, r := range c.loops {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// enclosingSig returns the signature a return statement at p returns to:
// the innermost enclosing function literal, or the annotated function.
func (c *hotChecker) enclosingSig(p token.Pos) *types.Signature {
	var best *ast.FuncLit
	for _, lit := range c.lits {
		if lit.Body.Pos() <= p && p < lit.Body.End() {
			if best == nil || lit.Pos() > best.Pos() {
				best = lit
			}
		}
	}
	if best != nil {
		if tv, ok := c.info.Types[best]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
		return nil
	}
	if obj := c.info.Defs[c.fn.Name]; obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

func (c *hotChecker) check() {
	name := c.fn.Name.Name
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkClosure(n, name)
		case *ast.CallExpr:
			c.checkCall(n, name)
		case *ast.AssignStmt:
			c.checkAssign(n, name)
		case *ast.ValueSpec:
			c.checkValueSpec(n, name)
		case *ast.ReturnStmt:
			c.checkReturn(n, name)
		case *ast.CompositeLit:
			c.checkCompositeLit(n, name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && c.isStringExpr(n) {
				c.p.Reportf(n.OpPos, "hot path %s: string concatenation allocates; use a preallocated buffer", name)
			}
		}
		return true
	})
}

// checkClosure flags function literals that capture outer variables: each
// evaluation allocates a context struct (and usually the func value too).
func (c *hotChecker) checkClosure(lit *ast.FuncLit, name string) {
	var captured []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		pos := v.Pos()
		if pos >= c.fn.Pos() && pos < c.fn.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			seen[v] = true
			captured = append(captured, v.Name())
		}
		return true
	})
	if len(captured) > 0 {
		c.p.Reportf(lit.Pos(), "hot path %s: closure captures %s and allocates per call; prebind the callback",
			name, strings.Join(captured, ", "))
	}
}

// checkCall flags interface-boxing argument conversions, hot map
// allocation via make, and unbounded appends in loops.
func (c *hotChecker) checkCall(call *ast.CallExpr, name string) {
	if fun, ok := call.Fun.(*ast.SelectorExpr); ok {
		c.checkIfaceFieldCall(fun, name)
	}
	tv, ok := c.info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): only interface targets box.
		if len(call.Args) == 1 {
			c.convert(call.Args[0], tv.Type, name)
		}
		return
	}
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if rtv, ok := c.info.Types[call]; ok {
					if _, isMap := rtv.Type.Underlying().(*types.Map); isMap {
						c.p.Reportf(call.Pos(), "hot path %s: make(map) allocates; hoist the map out of the hot path", name)
					}
				}
			case "append":
				if c.inLoop(call.Pos()) && !c.appendPreallocated(call) {
					c.p.Reportf(call.Pos(),
						"hot path %s: append inside a loop without preallocated capacity; size the slice up front", name)
				}
			}
			return
		}
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var want types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				want = sig.Params().At(np - 1).Type() // s... passes the slice itself
			} else if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				want = sl.Elem()
			}
		case i < np:
			want = sig.Params().At(i).Type()
		}
		c.convert(arg, want, name)
	}
}

// checkIfaceFieldCall flags an interface method call whose receiver is a
// stored interface-typed field: the hot loop re-discovers the concrete
// driver through the itable on every event, where a func-typed field
// bound once at provision time (the stackdrv pattern) dispatches
// directly. Interface-typed parameters and locals are out of scope —
// they don't persist across events, so there is no provision-time moment
// to bind them.
func (c *hotChecker) checkIfaceFieldCall(fun *ast.SelectorExpr, name string) {
	sel, ok := c.info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return
	}
	if _, ok := sel.Recv().Underlying().(*types.Interface); !ok {
		return
	}
	field, ok := c.fieldLoad(fun.X)
	if !ok {
		return
	}
	c.p.Reportf(fun.Pos(),
		"hot path %s: interface method call on stored field %s re-dispatches per event; bind a concrete function table at provision time",
		name, field)
}

// fieldLoad reports whether e loads a struct field, returning the field
// name for the diagnostic.
func (c *hotChecker) fieldLoad(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.fieldLoad(e.X)
	case *ast.SelectorExpr:
		if s, ok := c.info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return e.Sel.Name, true
		}
	case *ast.Ident:
		if v, ok := c.info.Uses[e].(*types.Var); ok && v.IsField() {
			return e.Name, true
		}
	}
	return "", false
}

// calleeIdent unwraps the identifier a call resolves through, if any.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch fun := fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.ParenExpr:
		return calleeIdent(fun.X)
	}
	return nil
}

// appendPreallocated reports whether the append target is a local slice
// declared with explicit capacity (3-arg make), as a reslice of existing
// storage (x[:0]), or as the result of another append — the shapes whose
// amortized growth is deliberate.
func (c *hotChecker) appendPreallocated(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := c.info.ObjectOf(id).(*types.Var)
	if !ok {
		return false
	}
	rhs := c.declRHS(v)
	switch rhs := rhs.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if cid := calleeIdent(rhs.Fun); cid != nil {
			if b, ok := c.info.Uses[cid].(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					return len(rhs.Args) == 3
				case "append":
					return true
				}
			}
		}
	}
	return false
}

// declRHS finds the expression v was declared from inside the annotated
// function, or nil.
func (c *hotChecker) declRHS(v *types.Var) (rhs ast.Expr) {
	ast.Inspect(c.fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && c.info.Defs[id] == v {
					rhs = n.Rhs[i]
					return false
				}
			}
		case *ast.ValueSpec:
			for i, nm := range n.Names {
				if c.info.Defs[nm] == v && i < len(n.Values) {
					rhs = n.Values[i]
					return false
				}
			}
		}
		return true
	})
	return rhs
}

// checkAssign flags boxing conversions in plain assignments and string
// concatenation via +=.
func (c *hotChecker) checkAssign(as *ast.AssignStmt, name string) {
	switch as.Tok {
	case token.ASSIGN:
		if len(as.Lhs) != len(as.Rhs) {
			return // multi-value call assignment: no per-operand conversion node
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if tv, ok := c.info.Types[lhs]; ok {
				c.convert(as.Rhs[i], tv.Type, name)
			}
		}
	case token.ADD_ASSIGN:
		if c.isStringExpr(as.Lhs[0]) {
			c.p.Reportf(as.TokPos, "hot path %s: string concatenation allocates; use a preallocated buffer", name)
		}
	}
}

// checkValueSpec flags boxing in `var x I = concrete` declarations.
func (c *hotChecker) checkValueSpec(spec *ast.ValueSpec, name string) {
	if spec.Type == nil {
		return
	}
	tv, ok := c.info.Types[spec.Type]
	if !ok {
		return
	}
	for _, val := range spec.Values {
		c.convert(val, tv.Type, name)
	}
}

// checkReturn flags boxing conversions at return statements.
func (c *hotChecker) checkReturn(ret *ast.ReturnStmt, name string) {
	sig := c.enclosingSig(ret.Pos())
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		c.convert(res, sig.Results().At(i).Type(), name)
	}
}

// checkCompositeLit flags map literals and boxing into interface-typed
// fields or elements.
func (c *hotChecker) checkCompositeLit(lit *ast.CompositeLit, name string) {
	tv, ok := c.info.Types[lit]
	if !ok {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Map:
		c.p.Reportf(lit.Pos(), "hot path %s: map literal allocates; hoist the map out of the hot path", name)
	case *types.Struct:
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for j := 0; j < t.NumFields(); j++ {
					if t.Field(j).Name() == key.Name {
						c.convert(kv.Value, t.Field(j).Type(), name)
						break
					}
				}
			} else if i < t.NumFields() {
				c.convert(elt, t.Field(i).Type(), name)
			}
		}
	case *types.Slice:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			c.convert(elt, t.Elem(), name)
		}
	case *types.Array:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			c.convert(elt, t.Elem(), name)
		}
	}
}

// convert reports an implicit concrete-to-interface conversion of expr to
// want. Interface-to-interface widening carries the existing word pair
// and constant conversions are materialized statically, so neither is
// flagged.
func (c *hotChecker) convert(expr ast.Expr, want types.Type, name string) {
	if want == nil {
		return
	}
	if _, ok := want.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Interface); ok {
		return
	}
	c.p.Reportf(expr.Pos(), "hot path %s: %s converted to %s boxes on the hot path; keep the call monomorphic",
		name, types.TypeString(tv.Type, types.RelativeTo(c.p.Pkg.Types)),
		types.TypeString(want, types.RelativeTo(c.p.Pkg.Types)))
}

// isStringExpr reports whether e has (non-constant) string type.
func (c *hotChecker) isStringExpr(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
