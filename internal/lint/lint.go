// Package lint implements lhlint, the repository's determinism and
// hot-path static-analysis suite. The paper (§6) argues that Lauberhorn's
// concurrent NIC/kernel/cache-line interaction is amenable to mechanical
// checking; internal/check reproduces that at the protocol level, and
// this package extends the same discipline to the Go source itself: the
// invariants every PR re-pins by hand — byte-identical serial/parallel
// output and allocation-free hot paths — become compiler-enforced law.
//
// The suite (see Suite) checks:
//
//   - detmap: no map iteration in packages whose output, event order, or
//     hashed state must be deterministic.
//   - detsource: no wall-clock time, global math/rand, or environment
//     reads in model/experiment code; simulated time comes from sim.Time
//     and randomness from per-universe RNG streams.
//   - goroutine: no go statements or sync primitives outside the
//     experiment Runner and cmd/ — a future intra-universe sharding
//     layer is the only place concurrency may enter.
//   - hotpath: functions annotated //lhlint:hotpath must not contain
//     constructs that allocate or box (capturing closures, interface
//     conversions, unbounded appends in loops, string concatenation,
//     map allocation).
//   - registry: every registered experiment has an EXPERIMENTS.md row
//     naming a pinning test that exists.
//   - docs: backticked repository paths in the top-level documents
//     resolve to files that exist.
//
// Annotation grammar (line comments, column-insensitive):
//
//	//lhlint:hotpath
//	    marks the following function as a hot path (on its doc comment).
//	//lhlint:allow <analyzer> <reason>
//	    suppresses that analyzer's diagnostics on the same line or the
//	    line below. The reason is mandatory: a bare allow is itself a
//	    diagnostic, so every suppression documents why it is sound.
//
// Determinism invariants: diagnostics are sorted by (file, line, column,
// analyzer, message) and carry root-relative paths, so lhlint's own
// output is byte-identical across runs and machines.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned root-relative.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check. Per-package analyzers set Run; module-wide
// analyzers (registry, docs) set RunModule instead.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters the packages Run sees; nil means every package.
	Applies func(pkgPath string) bool
	// Run inspects one type-checked package.
	Run func(p *Pass)
	// RunModule inspects the module as a whole.
	RunModule func(m *Module, report func(Diagnostic))
}

// Suite returns the full analyzer suite in presentation order.
func Suite() []*Analyzer {
	return []*Analyzer{DetMap, DetSource, Goroutine, HotPath, Registry, Docs}
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	// Path is the package's effective import path. Fixture tests override
	// it to exercise path-scoped analyzers.
	Path     string
	Pkg      *Package
	analyzer *Analyzer
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.out = append(*p.out, Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //lhlint: comment.
type directive struct {
	file     string
	line     int
	col      int
	verb     string // "allow" or "hotpath"
	analyzer string // allow only
	reason   string // allow only
}

// parseDirectives extracts every //lhlint: directive from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, "//lhlint:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			d := directive{file: pos.Filename, line: pos.Line, col: pos.Column}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				d.verb = ""
			} else {
				d.verb = fields[0]
			}
			if d.verb == "allow" && len(fields) >= 2 {
				d.analyzer = fields[1]
				d.reason = strings.TrimSpace(strings.Join(fields[2:], " "))
			}
			out = append(out, d)
		}
	}
	return out
}

// Run executes the given analyzers over every package of the module and
// returns the surviving diagnostics, deterministically sorted. Allow
// directives with a reason suppress matching diagnostics on their own
// line or the line directly below; malformed directives are reported by
// the synthetic "directive" analyzer and suppress nothing.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var dirs []directive
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			dirs = append(dirs, parseDirectives(m.Fset, f)...)
		}
		if pkg.Types == nil {
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{Fset: m.Fset, Path: pkg.ImportPath, Pkg: pkg, analyzer: a, out: &diags}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(m, func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			})
		}
	}
	diags = append(diags, checkDirectives(dirs, analyzers)...)
	return finish(diags, dirs)
}

// RunPackage executes per-package analyzers over one already-built
// package under an effective import path; the fixture tests use it.
func RunPackage(fset *token.FileSet, pkg *Package, asPath string, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var dirs []directive
	for _, f := range pkg.Files {
		dirs = append(dirs, parseDirectives(fset, f)...)
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		if a.Applies != nil && !a.Applies(asPath) {
			continue
		}
		pass := &Pass{Fset: fset, Path: asPath, Pkg: pkg, analyzer: a, out: &diags}
		a.Run(pass)
	}
	diags = append(diags, checkDirectives(dirs, analyzers)...)
	return finish(diags, dirs)
}

// checkDirectives validates //lhlint: comments themselves: unknown verbs,
// unknown analyzer names, and bare suppressions without a reason.
func checkDirectives(dirs []directive, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	report := func(d directive, msg string) {
		out = append(out, Diagnostic{File: d.file, Line: d.line, Col: d.col,
			Analyzer: "directive", Message: msg})
	}
	for _, d := range dirs {
		switch d.verb {
		case "hotpath":
			// Validated by the hotpath analyzer's annotation scan.
		case "allow":
			if d.analyzer == "" {
				report(d, "//lhlint:allow needs an analyzer name and a reason")
			} else if !known[d.analyzer] {
				report(d, fmt.Sprintf("//lhlint:allow names unknown analyzer %q", d.analyzer))
			} else if d.reason == "" {
				report(d, fmt.Sprintf("//lhlint:allow %s needs a reason: bare suppressions are forbidden", d.analyzer))
			}
		default:
			report(d, fmt.Sprintf("unknown directive //lhlint:%s", d.verb))
		}
	}
	return out
}

// finish applies allow suppression and sorts the surviving diagnostics.
func finish(diags []Diagnostic, dirs []directive) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := map[key]bool{}
	for _, d := range dirs {
		if d.verb == "allow" && d.analyzer != "" && d.reason != "" {
			// The directive covers its own line (trailing comment) and the
			// line below (comment above the offending statement).
			allowed[key{d.file, d.line, d.analyzer}] = true
			allowed[key{d.file, d.line + 1, d.analyzer}] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "directive" && allowed[key{d.File, d.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}
