package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diagMessages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

func wantOne(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly one diagnostic containing %q, got %d in %q", substr, n, diagMessages(diags))
	}
}

func TestCheckRegistryClean(t *testing.T) {
	entries := []regEntry{{ID: "e1", File: "internal/experiments/e1.go", Line: 10, Col: 3}}
	rows := []mdRow{{ID: "e1", Tests: []string{"TestE1Claims"}, Line: 5}}
	tests := map[string]bool{"TestE1Claims": true}
	if diags := checkRegistry(entries, rows, tests); len(diags) != 0 {
		t.Fatalf("clean registry produced %q", diagMessages(diags))
	}
}

func TestCheckRegistryCrossChecks(t *testing.T) {
	entries := []regEntry{
		{ID: "e1", File: "internal/experiments/e1.go", Line: 10, Col: 3},
		{ID: "e2", File: "internal/experiments/e2.go", Line: 12, Col: 3}, // no row
		{ID: "e4", File: "internal/experiments/e4.go", Line: 14, Col: 3}, // row has no tests
		{ID: "e5", File: "internal/experiments/e5.go", Line: 16, Col: 3}, // row's tests missing
		{ID: "e6", File: "internal/experiments/e6.go", Line: 18, Col: 3}, // one test of two missing
	}
	rows := []mdRow{
		{ID: "e1", Tests: []string{"TestE1Claims"}, Line: 5},
		{ID: "e3", Tests: []string{"TestE3Claims"}, Line: 6}, // no registration
		{ID: "e4", Line: 7},
		{ID: "e5", Tests: []string{"TestGone"}, Line: 8},
		{ID: "e6", Tests: []string{"TestE6Claims", "TestAlsoGone"}, Line: 9},
	}
	tests := map[string]bool{"TestE1Claims": true, "TestE3Claims": true, "TestE6Claims": true}
	diags := checkRegistry(entries, rows, tests)
	wantOne(t, diags, "e2 is registered but has no EXPERIMENTS.md catalog row")
	wantOne(t, diags, "e3 does not match any registered experiment")
	wantOne(t, diags, "e4 names no pinning test")
	wantOne(t, diags, "e5: none of its pinning tests exist (TestGone)")
	wantOne(t, diags, "e6 names nonexistent pinning test TestAlsoGone")
	if len(diags) != 5 {
		t.Errorf("want 5 diagnostics, got %d: %q", len(diags), diagMessages(diags))
	}
}

func TestCheckRegistryDuplicateRow(t *testing.T) {
	entries := []regEntry{{ID: "e1", File: "f.go", Line: 1, Col: 1}}
	rows := []mdRow{
		{ID: "e1", Tests: []string{"TestE1Claims"}, Line: 5},
		{ID: "e1", Tests: []string{"TestE1Claims"}, Line: 9},
	}
	tests := map[string]bool{"TestE1Claims": true}
	diags := checkRegistry(entries, rows, tests)
	wantOne(t, diags, "duplicate EXPERIMENTS.md row for e1 (first at line 5)")
}

func TestExperimentsRows(t *testing.T) {
	content := strings.Join([]string{
		"| ID | Claim | Pinned by |",
		"|----|-------|-----------|",
		"| e1 | dispatch beats DMA | `TestE1Claims`, `TestE1Table` |",
		"| e12 | something else | `TestE12Claims` |",
		"not a row | e9 |",
	}, "\n")
	rows := experimentsRows(content)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d: %+v", len(rows), rows)
	}
	if rows[0].ID != "e1" || len(rows[0].Tests) != 2 || rows[0].Tests[1] != "TestE1Table" || rows[0].Line != 3 {
		t.Errorf("row 0 parsed wrong: %+v", rows[0])
	}
	if rows[1].ID != "e12" || len(rows[1].Tests) != 1 {
		t.Errorf("row 1 parsed wrong: %+v", rows[1])
	}
}

// TestDirectiveValidation pins the directive analyzer: unknown verbs,
// unknown analyzer names, and bare reason-less allows are themselves
// diagnostics, so suppressions can never silently rot.
func TestDirectiveValidation(t *testing.T) {
	dir := t.TempDir()
	src := `package fix

//lhlint:allow hotpath
func a() {}

//lhlint:allow bogus because reasons
func b() {}

//lhlint:frobnicate
func c() {}

//lhlint:allow
func d() {}
`
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset, pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(fset, pkg, "lauberhorn/internal/fix", Suite())
	wantOne(t, diags, "//lhlint:allow hotpath needs a reason")
	wantOne(t, diags, `names unknown analyzer "bogus"`)
	wantOne(t, diags, "unknown directive //lhlint:frobnicate")
	wantOne(t, diags, "//lhlint:allow needs an analyzer name and a reason")
	if len(diags) != 4 {
		t.Errorf("want 4 diagnostics, got %d: %q", len(diags), diagMessages(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("diagnostic %s not attributed to the directive analyzer", d)
		}
	}
}

// TestAllowSuppression pins the suppression window: an allow covers its
// own line and the line below, nothing else.
func TestAllowSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package fix

import "time"

//lhlint:allow detsource fixture: covered by the line-below rule
func covered() time.Time { return time.Now() }

func trailing() time.Time { return time.Now() } //lhlint:allow detsource fixture: covered same-line

func uncovered() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset, pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(fset, pkg, "lauberhorn/internal/fix", Suite())
	if len(diags) != 1 {
		t.Fatalf("want exactly the uncovered finding, got %q", diagMessages(diags))
	}
	if diags[0].Line != 10 {
		t.Errorf("finding at line %d, want 10 (the uncovered call)", diags[0].Line)
	}
}
