package lint

import (
	"go/ast"
	"go/types"
)

// detPackages are the packages whose output, event ordering, or hashed
// state feeds the serial-vs-parallel determinism contract: iterating a Go
// map there injects randomized order straight into tables, schedules, or
// traces.
var detPackages = map[string]bool{
	"lauberhorn/internal/experiments": true,
	"lauberhorn/internal/sim":         true,
	"lauberhorn/internal/fabric":      true,
	"lauberhorn/internal/cluster":     true,
	"lauberhorn/internal/stats":       true,
	"lauberhorn/internal/check":       true,
	"lauberhorn/internal/transport":   true,
}

// DetMap flags `range` over a map in determinism-critical packages. Map
// iteration order is randomized per run, so any such loop that feeds
// output, event scheduling, or state hashing breaks the byte-identical
// serial/parallel contract. Iterations that feed a sort or a commutative
// reduction are annotated //lhlint:allow detmap <reason>.
var DetMap = &Analyzer{
	Name:    "detmap",
	Doc:     "flags map iteration in packages with deterministic-output contracts",
	Applies: func(pkgPath string) bool { return detPackages[pkgPath] },
	Run:     runDetMap,
}

func runDetMap(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Pkg.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				p.Reportf(rng.Pos(),
					"range over %s: map iteration order is randomized; sort the keys first or annotate //lhlint:allow detmap <reason>",
					types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)))
			}
			return true
		})
	}
}
