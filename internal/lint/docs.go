package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Docs verifies that backticked repository paths in the top-level
// documents resolve to files that exist — the doc-reference half of the
// old scripts/docs_lint.sh, folded into lhlint so it ships with line
// numbers and the same deterministic output; the script keeps only the
// prose-level package-comment check.
var Docs = &Analyzer{
	Name:      "docs",
	Doc:       "backticked repository paths in top-level docs must exist",
	RunModule: runDocs,
}

// docFiles are the documents whose path references are checked; they are
// also required to exist themselves.
var docFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

var (
	backtickRE = regexp.MustCompile("`([^`]*)`")
	// pathShapeRE matches tokens that look like file paths: anything with
	// a slash, or a bare *.md/*.json/*.yml name at the repository root.
	pathShapeRE = regexp.MustCompile(`^\.?/?([A-Za-z0-9_.-]+/)+[A-Za-z0-9_.-]+$|^[A-Za-z0-9_-]+\.(md|json|yml)$`)
)

// repoPathPrefixes limits existence checks to repository-shaped paths;
// stdlib packages, schema names, and package-relative mentions are out of
// scope.
var repoPathPrefixes = []string{"internal/", "cmd/", "examples/", "scripts/", ".github/"}

func runDocs(m *Module, report func(Diagnostic)) {
	for _, doc := range docFiles {
		content, err := os.ReadFile(filepath.Join(m.Root, doc))
		if err != nil {
			report(Diagnostic{File: doc, Line: 1, Col: 1,
				Message: fmt.Sprintf("required document is missing: %v", err)})
			continue
		}
		for i, line := range strings.Split(string(content), "\n") {
			for _, tick := range backtickRE.FindAllStringSubmatch(line, -1) {
				for _, token := range strings.Fields(tick[1]) {
					ref := strings.TrimPrefix(token, "./")
					if !pathShapeRE.MatchString(token) || !isRepoPath(ref) {
						continue
					}
					if _, err := os.Stat(filepath.Join(m.Root, filepath.FromSlash(ref))); err != nil {
						report(Diagnostic{File: doc, Line: i + 1, Col: 1,
							Message: fmt.Sprintf("references missing path %s", token)})
					}
				}
			}
		}
	}
}

// isRepoPath reports whether ref is shaped like a repository path this
// check owns.
func isRepoPath(ref string) bool {
	for _, p := range repoPathPrefixes {
		if strings.HasPrefix(ref, p) {
			return true
		}
	}
	switch filepath.Ext(ref) {
	case ".md", ".json", ".yml":
		return !strings.Contains(ref, "/")
	}
	return false
}
