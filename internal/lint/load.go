package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Module is every package of one Go module, parsed and type-checked.
// Loading is deliberately stdlib-only (go/parser + go/types with a
// source importer), so lhlint needs nothing beyond the toolchain that
// builds the repository.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset maps every parsed position; Diagnostic positions resolve
	// through it.
	Fset *token.FileSet
	// Packages holds every package in the module, sorted by import path.
	Packages []*Package

	byPath   map[string]*Package
	typed    map[string]*types.Package
	checking map[string]bool
	std      types.ImporterFrom
}

// Package is one parsed, type-checked package of the module.
type Package struct {
	// ImportPath is the full import path ("lauberhorn/internal/sim").
	ImportPath string
	// Dir is the package directory relative to the module root ("" for
	// the root package).
	Dir string
	// Files are the non-test source files, sorted by file name.
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked; the registry analyzer reads declared test names from
	// them.
	TestFiles []*ast.File
	// Types and Info carry the type-checking results for Files.
	Types *types.Package
	Info  *types.Info
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule parses and type-checks every package under root, which must
// contain a go.mod. Directories named testdata, hidden directories, and
// _-prefixed directories are skipped, mirroring the go tool.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	match := moduleLineRE.FindSubmatch(gomod)
	if match == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	m := &Module{
		Root:     root,
		Path:     string(match[1]),
		Fset:     token.NewFileSet(),
		byPath:   map[string]*Package{},
		typed:    map[string]*types.Package{},
		checking: map[string]bool{},
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom)

	if err := m.discover(); err != nil {
		return nil, err
	}
	for _, pkg := range m.Packages {
		if err := m.typecheck(pkg.ImportPath); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// discover walks the module tree and parses every package's files.
func (m *Module) discover() error {
	err := filepath.WalkDir(m.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return m.parseDir(path)
	})
	if err != nil {
		return err
	}
	sort.Slice(m.Packages, func(i, j int) bool {
		return m.Packages[i].ImportPath < m.Packages[j].ImportPath
	})
	return nil
}

// parseDir parses the package in dir, if any, and records it.
func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	if rel == "." {
		rel = ""
	}
	pkg := &Package{ImportPath: path.Join(m.Path, filepath.ToSlash(rel)), Dir: filepath.ToSlash(rel)}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		// Positions are recorded root-relative so diagnostics are stable
		// regardless of where lhlint runs.
		label := name
		if rel != "" {
			label = rel + "/" + name
		}
		f, err := parser.ParseFile(m.Fset, label, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parsing %s: %w", label, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil
	}
	m.Packages = append(m.Packages, pkg)
	m.byPath[pkg.ImportPath] = pkg
	return nil
}

// typecheck type-checks the module package with the given import path,
// resolving module-internal imports recursively and standard-library
// imports through the source importer.
func (m *Module) typecheck(importPath string) error {
	pkg := m.byPath[importPath]
	if pkg == nil || pkg.Types != nil || len(pkg.Files) == 0 {
		return nil
	}
	if m.checking[importPath] {
		return fmt.Errorf("lint: import cycle through %s", importPath)
	}
	m.checking[importPath] = true
	defer delete(m.checking, importPath)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErr error
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, m.Fset, pkg.Files, info)
	if typeErr != nil {
		return fmt.Errorf("lint: type-checking %s: %w", importPath, typeErr)
	}
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	m.typed[importPath] = tpkg
	return nil
}

// LoadDir parses and type-checks the single package in dir, outside any
// module; the fixture tests use it. Imports resolve through the source
// importer only, so fixtures may use the standard library but not module
// packages. Positions are labeled with the bare file name.
func LoadDir(dir string) (*token.FileSet, *Package, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pkg := &Package{ImportPath: filepath.Base(dir), Dir: filepath.ToSlash(dir)}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg.ImportPath, fset, pkg.Files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return fset, pkg, nil
}

// moduleImporter resolves imports during type checking: module-internal
// paths re-enter typecheck, everything else goes to the source importer.
type moduleImporter Module

func (mi *moduleImporter) Import(p string) (*types.Package, error) {
	return mi.ImportFrom(p, "", 0)
}

func (mi *moduleImporter) ImportFrom(p, dir string, mode types.ImportMode) (*types.Package, error) {
	m := (*Module)(mi)
	if p == "unsafe" {
		return types.Unsafe, nil
	}
	if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
		if tp, ok := m.typed[p]; ok {
			return tp, nil
		}
		if err := m.typecheck(p); err != nil {
			return nil, err
		}
		tp, ok := m.typed[p]
		if !ok {
			return nil, fmt.Errorf("lint: unknown module package %q", p)
		}
		return tp, nil
	}
	return m.std.ImportFrom(p, dir, mode)
}
