package bypass

import (
	"testing"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/fabric"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/nicdma"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

var (
	serverEP = wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 2}, IP: wire.IP{10, 0, 0, 2}, Port: 9000}
	clientEP = wire.Endpoint{MAC: wire.MAC{2, 0, 0, 0, 0, 1}, IP: wire.IP{10, 0, 0, 1}, Port: 5555}
)

type testClient struct {
	s      *sim.Sim
	link   *fabric.Link
	side   int
	sentAt map[uint64]sim.Time
	rtts   map[uint64]sim.Time
	resps  []*rpc.Message
}

func (c *testClient) DeliverFrame(frame []byte) {
	d, err := wire.ParseUDP(frame)
	if err != nil {
		return
	}
	m, err := rpc.Decode(d.Payload)
	if err != nil {
		return
	}
	c.resps = append(c.resps, m)
	if t0, ok := c.sentAt[m.ID]; ok {
		c.rtts[m.ID] = c.s.Now() - t0
	}
}

func (c *testClient) send(t *testing.T, id uint64, body []byte) {
	t.Helper()
	req := rpc.EncodeRequest(1, 1, id, 0, body)
	frame, err := wire.BuildUDP(clientEP, serverEP, uint16(id), req)
	if err != nil {
		t.Fatal(err)
	}
	c.sentAt[id] = c.s.Now()
	c.link.Send(c.side, frame)
}

func rig(t *testing.T, serviceTime sim.Time) (*sim.Sim, *kernel.Kernel, *Worker, *testClient) {
	t.Helper()
	s := sim.New(7)
	k := kernel.New(s, 1, 2.5, kernel.DefaultCosts())
	nic := nicdma.New(s, nicdma.DefaultConfig())
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, nic)
	nic.AttachLink(link, 1)

	reg := rpc.NewRegistry()
	reg.Register(&rpc.ServiceDesc{ID: 1, Name: "echo", Methods: []rpc.MethodDesc{{
		ID: 1, Name: "echo",
		Handler: func(req []byte) ([]byte, sim.Time) { return req, serviceTime },
	}}})
	w := NewWorker(WorkerConfig{
		Queue: nic.Queue(0), NIC: nic, Local: serverEP,
		Registry: reg, Codec: rpc.DefaultCostModel(), Costs: DefaultCosts(),
	})
	proc := k.NewProcess("echo")
	k.SpawnPinned(proc, "bypass-worker", 0, w.Loop)
	return s, k, w, client
}

func TestEchoRoundTrip(t *testing.T) {
	s, _, w, client := rig(t, 0)
	client.send(t, 1, []byte("ping"))
	s.RunUntil(sim.Second)
	if len(client.resps) != 1 {
		t.Fatalf("%d responses", len(client.resps))
	}
	if string(client.resps[0].Body) != "ping" {
		t.Fatalf("body %q", client.resps[0].Body)
	}
	if w.Stats().Served != 1 {
		t.Error("served counter")
	}
	rtt := client.rtts[1]
	// Bypass must be well under the kernel path's ~12us.
	if rtt > 10*sim.Microsecond || rtt < 2*sim.Microsecond {
		t.Errorf("bypass RTT %v implausible", rtt)
	}
}

func TestBypassFasterThanPlausibleKernelPath(t *testing.T) {
	s, _, _, client := rig(t, 0)
	client.send(t, 1, make([]byte, 40))
	s.RunUntil(sim.Second)
	if rtt := client.rtts[1]; rtt >= 12*sim.Microsecond {
		t.Errorf("bypass RTT %v not better than kernel-path ballpark", rtt)
	}
}

func TestIdleWorkerSpins(t *testing.T) {
	s, k, _, _ := rig(t, 0)
	s.RunUntil(10 * sim.Millisecond)
	c := k.CPU(0)
	if c.State() != cpu.Spin {
		t.Fatalf("idle bypass core in %v, want spin", c.State())
	}
	// Nearly all time since boot must be Spin.
	if c.Residency(cpu.Spin) < 9*sim.Millisecond {
		t.Errorf("spin residency %v over 10ms idle", c.Residency(cpu.Spin))
	}
	if c.Residency(cpu.Idle) > sim.Millisecond {
		t.Errorf("idle residency %v; bypass never sleeps", c.Residency(cpu.Idle))
	}
}

func TestBackToBackRequests(t *testing.T) {
	s, _, w, client := rig(t, sim.Microsecond)
	const n = 32
	for i := 0; i < n; i++ {
		client.send(t, uint64(i+1), []byte("x"))
	}
	s.RunUntil(sim.Second)
	if len(client.resps) != n {
		t.Fatalf("%d/%d responses", len(client.resps), n)
	}
	if w.Stats().Served != n {
		t.Errorf("served %d", w.Stats().Served)
	}
}

func TestRunToCompletionOrdering(t *testing.T) {
	s, _, _, client := rig(t, 5*sim.Microsecond)
	for i := 0; i < 5; i++ {
		client.send(t, uint64(i+1), []byte("x"))
	}
	s.RunUntil(sim.Second)
	for i, m := range client.resps {
		if m.ID != uint64(i+1) {
			t.Fatalf("responses out of order: %v at %d", m.ID, i)
		}
	}
}

func TestBadRPCCounted(t *testing.T) {
	s, _, w, client := rig(t, 0)
	frame, _ := wire.BuildUDP(clientEP, serverEP, 1, []byte("not-rpc"))
	client.link.Send(0, frame)
	s.RunUntil(10 * sim.Millisecond)
	if w.Stats().BadRPC != 1 {
		t.Errorf("bad RPC count %d", w.Stats().BadRPC)
	}
	// Still serves afterwards.
	client.send(t, 2, []byte("ok"))
	s.RunUntil(sim.Second)
	if len(client.resps) != 1 {
		t.Fatal("worker died after bad RPC")
	}
}

func TestNoMethodStatus(t *testing.T) {
	s, _, w, client := rig(t, 0)
	req := rpc.EncodeRequest(1, 99, 5, 0, nil)
	frame, _ := wire.BuildUDP(clientEP, serverEP, 1, req)
	client.sentAt[5] = s.Now()
	client.link.Send(0, frame)
	s.RunUntil(sim.Second)
	if len(client.resps) != 1 || client.resps[0].Status != rpc.StatusNoSuchMethod {
		t.Fatal("NoSuchMethod response missing")
	}
	if w.Stats().NoMethod != 1 {
		t.Error("NoMethod counter")
	}
}

func TestZeroSyscallsOnDataPath(t *testing.T) {
	s, k, _, client := rig(t, 0)
	for i := 0; i < 10; i++ {
		client.send(t, uint64(i+1), []byte("x"))
	}
	s.RunUntil(sim.Second)
	if k.Stats().Syscalls != 0 {
		t.Errorf("bypass data path made %d syscalls", k.Stats().Syscalls)
	}
}

func TestOversubscribedWorkersShareCore(t *testing.T) {
	// Two workers (two services, two queues) pinned to one core must
	// time-share via the kernel quantum — the flexibility cliff the paper
	// describes.
	s := sim.New(7)
	k := kernel.New(s, 1, 2.5, kernel.DefaultCosts())
	k.Costs.Quantum = 100 * sim.Microsecond
	cfg := nicdma.DefaultConfig()
	cfg.Queues = 2
	nic := nicdma.New(s, cfg)
	link := fabric.NewLink(s, fabric.Net100G)
	client := &testClient{s: s, link: link, sentAt: map[uint64]sim.Time{}, rtts: map[uint64]sim.Time{}}
	link.Attach(client, nic)
	nic.AttachLink(link, 1)

	reg := rpc.NewRegistry()
	reg.Register(&rpc.ServiceDesc{ID: 1, Name: "s1", Methods: []rpc.MethodDesc{{
		ID: 1, Handler: func(req []byte) ([]byte, sim.Time) { return req, 0 },
	}}})
	served := [2]int{}
	for qi := 0; qi < 2; qi++ {
		qi := qi
		w := NewWorker(WorkerConfig{
			Queue: nic.Queue(qi), NIC: nic, Local: serverEP,
			Registry: reg, Codec: rpc.DefaultCostModel(), Costs: DefaultCosts(),
			OnServed: func(m *rpc.Message) { served[qi]++ },
		})
		k.SpawnPinned(k.NewProcess("svc"), "w", 0, w.Loop)
	}
	// Find source ports that RSS-hash to each queue.
	ports := [2]uint16{}
	for p := uint16(1000); p < 1100 && (ports[0] == 0 || ports[1] == 0); p++ {
		fl := wire.Flow{SrcIP: clientEP.IP, DstIP: serverEP.IP, SrcPort: p, DstPort: serverEP.Port}
		q := int(fl.Hash()) % 2
		if ports[q] == 0 {
			ports[q] = p
		}
	}
	sendOn := func(port uint16, id uint64) {
		req := rpc.EncodeRequest(1, 1, id, 0, []byte("x"))
		src := clientEP
		src.Port = port
		frame, _ := wire.BuildUDP(src, serverEP, uint16(id), req)
		client.sentAt[id] = s.Now()
		client.link.Send(0, frame)
	}
	sendOn(ports[0], 1)
	sendOn(ports[1], 2)
	s.RunUntil(2 * sim.Second)
	if served[0] == 0 || served[1] == 0 {
		t.Fatalf("served %v; oversubscribed workers starved", served)
	}
	// The second service's request had to wait out a quantum switch, so
	// its latency must be far worse than the first's.
	if client.rtts[2] < 10*client.rtts[1] && client.rtts[1] < 10*client.rtts[2] {
		t.Errorf("rtts %v vs %v: expected one to wait a quantum", client.rtts[1], client.rtts[2])
	}
}
