// Package bypass models a kernel-bypass dataplane in the style of IX,
// Arrakis and Demikernel: each worker owns a NIC receive queue mapped into
// user space, busy-polls it with interrupts disabled, and runs RPC handlers
// to completion with no syscalls on the data path.
//
// This is the paper's performance baseline — the fastest of the
// traditional stacks when workers are statically provisioned one-per-core,
// and the least flexible otherwise: an idle worker still burns a core
// (Spin power), and when services outnumber cores, workers time-share
// cores on the kernel's quantum and requests for descheduled services wait
// out entire time slices (experiment E4).
//
// Determinism invariants: worker-to-core pinning is fixed round-robin at
// provisioning time, queue steering is port-modulo-queues, and polling
// loops advance only on simulator events — no randomness, no wall clock.
package bypass

import (
	"fmt"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/nicdma"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

// Costs are the user-space per-packet costs of the bypass dataplane.
// They are deliberately lean: this is a tuned dataplane OS, not sockets.
type Costs struct {
	// PollDiscover is the time from a packet landing in the ring to the
	// poll loop picking it up (average half a poll-iteration).
	PollDiscover sim.Time
	// RxProcess is user-space protocol handling per packet (headers
	// already verified by NIC offloads).
	RxProcess sim.Time
	// TxBuild covers building headers + the TX descriptor.
	TxBuild sim.Time
}

// DefaultCosts returns the cost set used by the experiments.
func DefaultCosts() Costs {
	return Costs{
		PollDiscover: 40 * sim.Nanosecond,
		RxProcess:    250 * sim.Nanosecond,
		TxBuild:      200 * sim.Nanosecond,
	}
}

// WorkerConfig describes one bypass worker: a service bound to a NIC
// queue.
type WorkerConfig struct {
	Queue    *nicdma.RxQueue
	NIC      *nicdma.NIC
	Local    wire.Endpoint // source endpoint for responses
	Registry *rpc.Registry
	Codec    rpc.CostModel
	Costs    Costs
	// OnResponse observes responses before transmit (tests/metrics).
	OnResponse func(m *rpc.Message)
	// OnServed is called after each request completes, with the request
	// message and its queue residence time (ring arrival → response
	// transmitted).
	OnServed func(m *rpc.Message)
}

// Stats counts worker activity.
type Stats struct {
	Served   uint64
	BadRPC   uint64
	NoMethod uint64
}

// Worker is the state of one bypass poll-loop thread. The run-to-
// completion pipeline is flattened into prebound stage continuations: a
// worker serves one request at a time, so the per-request fields are
// reused across iterations and the steady state allocates only the
// response frame (whose ownership transfers to the NIC).
type Worker struct {
	cfg   WorkerConfig
	stats Stats
	ipID  uint16

	tc *kernel.TC // current thread context, refreshed on (re)dispatch

	// per-request state
	d       *wire.Datagram
	msg     rpc.Message
	status  uint16
	body    []byte
	encScr  []byte // response-encoding scratch; copied into the frame
	respMsg rpc.Message

	// continuations, bound once
	pollFn       func()
	resumeFn     func(*kernel.TC)
	arrivalIssue func(func())
	discovered   func()
	afterRx      func()
	afterSvc     func()
	afterTx      func()
}

// NewWorker validates the configuration and returns a worker whose Loop is
// a thread body for kernel.Spawn/SpawnPinned.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Queue == nil || cfg.NIC == nil || cfg.Registry == nil {
		panic("bypass: incomplete worker config")
	}
	cfg.Queue.DisableIRQ()
	w := &Worker{cfg: cfg}
	w.pollFn = w.poll
	w.resumeFn = func(tc2 *kernel.TC) { w.tc = tc2; w.poll() }
	w.arrivalIssue = func(complete func()) { w.cfg.Queue.OnArrival(complete) }
	w.discovered = func() { w.tc.Run(w.cfg.Costs.PollDiscover, cpu.Spin, w.pollFn) }
	w.afterRx = w.dispatch
	w.afterSvc = w.encode
	w.afterTx = w.transmit
	return w
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats { return w.stats }

// Loop is the run-to-completion poll loop (a thread body).
func (w *Worker) Loop(tc *kernel.TC) {
	w.tc = tc
	w.poll()
}

//lhlint:hotpath
func (w *Worker) poll() {
	tc := w.tc
	// Honour a deferred preemption (we might have been spinning when the
	// kernel decided to take the core away).
	if tc.Thread().PreemptPending() {
		tc.Thread().ClearPreempt()
		tc.Yield(w.resumeFn)
		return
	}
	d := w.cfg.Queue.Poll()
	if d == nil {
		// Park on the empty ring, burning Spin power until a packet
		// lands, then pay the discovery cost. The wait is preemptible:
		// if the kernel time-slices us out (services > cores), we
		// re-enter the poll loop when rescheduled.
		tc.SpinWait(w.arrivalIssue, w.discovered, w.resumeFn)
		return
	}
	w.serve(d)
}

// serve starts one request: decode, then charge receive-side processing.
//
//lhlint:hotpath
func (w *Worker) serve(d *wire.Datagram) {
	if err := rpc.DecodeInto(d.Payload, &w.msg); err != nil {
		w.stats.BadRPC++
		w.poll()
		return
	}
	w.d = d
	c := &w.cfg
	work := c.Costs.RxProcess + c.Codec.Unmarshal(len(w.msg.Body)) + c.Codec.DispatchLookup
	w.tc.RunUser(work, w.afterRx)
}

// dispatch looks up the handler, runs it, and charges its service time.
//
//lhlint:hotpath
func (w *Worker) dispatch() {
	c := &w.cfg
	svc := c.Registry.Lookup(w.msg.Service)
	var m *rpc.MethodDesc
	if svc != nil {
		m = svc.Method(w.msg.Method)
	}
	w.status = rpc.StatusOK
	w.body = nil
	var service sim.Time
	if m == nil {
		w.stats.NoMethod++
		w.status = rpc.StatusNoSuchMethod
	} else {
		w.body, service = m.Handler(w.msg.Body)
	}
	w.tc.RunUser(service, w.afterSvc)
}

// encode serializes the response into the worker's scratch buffer and
// charges marshalling plus TX descriptor costs. The scratch is safe to
// reuse because BuildUDP copies the payload into the frame.
//
//lhlint:hotpath
func (w *Worker) encode() {
	c := &w.cfg
	w.encScr = rpc.AppendMessage(w.encScr[:0], rpc.Header{
		Kind: rpc.KindResponse, Service: w.msg.Service, Method: w.msg.Method,
		ID: w.msg.ID, Status: w.status,
	}, w.body)
	tx := c.Codec.Marshal(len(w.body)) + c.Costs.TxBuild + c.NIC.DoorbellCost()
	w.tc.RunUser(tx, w.afterTx)
}

// transmit builds the response frame, hands it to the NIC, and re-enters
// the poll loop.
//
//lhlint:hotpath
func (w *Worker) transmit() {
	c := &w.cfg
	d := w.d
	w.ipID++
	dst := wire.Endpoint{MAC: d.Eth.Src, IP: d.IP.Src, Port: d.UDP.SrcPort}
	frame, err := wire.BuildUDP(c.Local, dst, w.ipID, w.encScr)
	if err != nil {
		panicTx(err)
	}
	if c.OnResponse != nil {
		if err := rpc.DecodeInto(w.encScr, &w.respMsg); err == nil {
			c.OnResponse(&w.respMsg)
		}
	}
	c.NIC.Transmit(frame)
	w.stats.Served++
	if c.OnServed != nil {
		c.OnServed(&w.msg)
	}
	w.poll()
}

// panicTx keeps the fmt boxing of the oversized-response panic off the
// transmit hot path; it never returns.
func panicTx(err error) {
	panic(fmt.Sprintf("bypass: tx: %v", err))
}
