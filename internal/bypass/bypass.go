// Package bypass models a kernel-bypass dataplane in the style of IX,
// Arrakis and Demikernel: each worker owns a NIC receive queue mapped into
// user space, busy-polls it with interrupts disabled, and runs RPC handlers
// to completion with no syscalls on the data path.
//
// This is the paper's performance baseline — the fastest of the
// traditional stacks when workers are statically provisioned one-per-core,
// and the least flexible otherwise: an idle worker still burns a core
// (Spin power), and when services outnumber cores, workers time-share
// cores on the kernel's quantum and requests for descheduled services wait
// out entire time slices (experiment E4).
//
// Determinism invariants: worker-to-core pinning is fixed round-robin at
// provisioning time, queue steering is port-modulo-queues, and polling
// loops advance only on simulator events — no randomness, no wall clock.
package bypass

import (
	"fmt"

	"lauberhorn/internal/cpu"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/nicdma"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/sim"
	"lauberhorn/internal/wire"
)

// Costs are the user-space per-packet costs of the bypass dataplane.
// They are deliberately lean: this is a tuned dataplane OS, not sockets.
type Costs struct {
	// PollDiscover is the time from a packet landing in the ring to the
	// poll loop picking it up (average half a poll-iteration).
	PollDiscover sim.Time
	// RxProcess is user-space protocol handling per packet (headers
	// already verified by NIC offloads).
	RxProcess sim.Time
	// TxBuild covers building headers + the TX descriptor.
	TxBuild sim.Time
}

// DefaultCosts returns the cost set used by the experiments.
func DefaultCosts() Costs {
	return Costs{
		PollDiscover: 40 * sim.Nanosecond,
		RxProcess:    250 * sim.Nanosecond,
		TxBuild:      200 * sim.Nanosecond,
	}
}

// WorkerConfig describes one bypass worker: a service bound to a NIC
// queue.
type WorkerConfig struct {
	Queue    *nicdma.RxQueue
	NIC      *nicdma.NIC
	Local    wire.Endpoint // source endpoint for responses
	Registry *rpc.Registry
	Codec    rpc.CostModel
	Costs    Costs
	// OnResponse observes responses before transmit (tests/metrics).
	OnResponse func(m *rpc.Message)
	// OnServed is called after each request completes, with the request
	// message and its queue residence time (ring arrival → response
	// transmitted).
	OnServed func(m *rpc.Message)
}

// Stats counts worker activity.
type Stats struct {
	Served   uint64
	BadRPC   uint64
	NoMethod uint64
}

// Worker is the state of one bypass poll-loop thread.
type Worker struct {
	cfg   WorkerConfig
	stats Stats
	ipID  uint16
}

// NewWorker validates the configuration and returns a worker whose Loop is
// a thread body for kernel.Spawn/SpawnPinned.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Queue == nil || cfg.NIC == nil || cfg.Registry == nil {
		panic("bypass: incomplete worker config")
	}
	cfg.Queue.DisableIRQ()
	return &Worker{cfg: cfg}
}

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats { return w.stats }

// Loop is the run-to-completion poll loop (a thread body).
func (w *Worker) Loop(tc *kernel.TC) {
	w.poll(tc)
}

func (w *Worker) poll(tc *kernel.TC) {
	// Honour a deferred preemption (we might have been spinning when the
	// kernel decided to take the core away).
	if tc.Thread().PreemptPending() {
		tc.Thread().ClearPreempt()
		tc.Yield(func(tc2 *kernel.TC) { w.poll(tc2) })
		return
	}
	d := w.cfg.Queue.Poll()
	if d == nil {
		// Park on the empty ring, burning Spin power until a packet
		// lands, then pay the discovery cost. The wait is preemptible:
		// if the kernel time-slices us out (services > cores), we
		// re-enter the poll loop when rescheduled.
		tc.SpinWait(func(complete func()) {
			w.cfg.Queue.OnArrival(complete)
		}, func() {
			tc.Run(w.cfg.Costs.PollDiscover, cpu.Spin, func() { w.poll(tc) })
		}, func(tc2 *kernel.TC) {
			w.poll(tc2)
		})
		return
	}
	w.serve(tc, d)
}

func (w *Worker) serve(tc *kernel.TC, d *wire.Datagram) {
	msg, err := rpc.Decode(d.Payload)
	if err != nil {
		w.stats.BadRPC++
		w.poll(tc)
		return
	}
	c := w.cfg
	work := c.Costs.RxProcess + c.Codec.Unmarshal(len(msg.Body)) + c.Codec.DispatchLookup
	tc.RunUser(work, func() {
		svc := c.Registry.Lookup(msg.Service)
		var m *rpc.MethodDesc
		if svc != nil {
			m = svc.Method(msg.Method)
		}
		status := uint16(rpc.StatusOK)
		var body []byte
		var service sim.Time
		if m == nil {
			w.stats.NoMethod++
			status = rpc.StatusNoSuchMethod
		} else {
			body, service = m.Handler(msg.Body)
		}
		tc.RunUser(service, func() {
			resp := rpc.EncodeResponse(msg.Service, msg.Method, msg.ID, status, body)
			tx := c.Codec.Marshal(len(body)) + c.Costs.TxBuild + c.NIC.DoorbellCost()
			tc.RunUser(tx, func() {
				w.ipID++
				src := c.Local
				dst := wire.Endpoint{MAC: d.Eth.Src, IP: d.IP.Src, Port: d.UDP.SrcPort}
				frame, err := wire.BuildUDP(src, dst, w.ipID, resp)
				if err != nil {
					panic(fmt.Sprintf("bypass: tx: %v", err))
				}
				if c.OnResponse != nil {
					if rm, err := rpc.Decode(resp); err == nil {
						c.OnResponse(rm)
					}
				}
				c.NIC.Transmit(frame)
				w.stats.Served++
				if c.OnServed != nil {
					c.OnServed(msg)
				}
				w.poll(tc)
			})
		})
	})
}
