package bypass

import (
	"fmt"

	"lauberhorn/internal/fabric"
	"lauberhorn/internal/kernel"
	"lauberhorn/internal/nicdma"
	"lauberhorn/internal/rpc"
	"lauberhorn/internal/stackdrv"
	"lauberhorn/internal/wire"
)

// The cluster-facing stack driver: one pinned worker per service, each
// bound to a port-steered NIC queue, workers pinned round-robin across
// cores (statically provisioned, as IX/Arrakis deployments are).
func init() {
	stackdrv.Register(stackdrv.Entry{
		Kind:  stackdrv.Bypass,
		Name:  "Bypass",
		Label: "Kernel bypass",
		Sweep: true,
		New:   newDriver,
		Check: checkSteering,
	})
}

// checkSteering rejects service port sets whose port-mod-queue residues
// collide: queue selection is Port mod len(Services), so colliding ports
// would starve one service's queue while double-serving another.
func checkSteering(p stackdrv.HostParams) error {
	residues := make(map[int]uint16)
	for _, svc := range p.Services {
		res := int(svc.Port) % len(p.Services)
		if other, clash := residues[res]; clash {
			return fmt.Errorf("cluster: bypass host %q ports %d and %d steer to the same queue (%d mod %d)",
				p.HostName, other, svc.Port, res, len(p.Services))
		}
		residues[res] = svc.Port
	}
	return nil
}

// driver adapts the bypass dataplane to the stack-driver lifecycle.
type driver struct {
	k        *kernel.Kernel
	nic      *nicdma.NIC
	local    wire.Endpoint
	cores    int
	services []stackdrv.Service
	workers  map[uint32]*Worker
}

func newDriver(p stackdrv.HostParams) stackdrv.Instance {
	k := kernel.New(p.Sim, p.Cores, 2.5, kernel.DefaultCosts())
	cfg := nicdma.DefaultConfig()
	if p.NIC != nil {
		cfg = *p.NIC
	}
	cfg.Queues = len(p.Services)
	cfg.SteerByPort = true
	cfg.FilterIP = p.Endpoint.IP
	return &driver{k: k, nic: nicdma.New(p.Sim, cfg), local: p.Endpoint,
		cores: p.Cores, services: p.Services}
}

func (d *driver) Kernel() *kernel.Kernel              { return d.k }
func (d *driver) FramePort() fabric.FramePort         { return d.nic }
func (d *driver) AttachLink(l *fabric.Link, side int) { d.nic.AttachLink(l, side) }

func (d *driver) Start(peers []wire.Endpoint) {
	reg := rpc.NewRegistry()
	for _, ss := range d.services {
		reg.Register(ss.Desc)
	}
	d.workers = make(map[uint32]*Worker, len(d.services))
	for i, ss := range d.services {
		// Queue selection must match SteerByPort: port p maps to queue
		// p mod len(services) (checkSteering rejects collisions).
		q := d.nic.Queue(int(ss.Port) % len(d.services))
		w := NewWorker(WorkerConfig{
			Queue: q, NIC: d.nic, Local: d.local,
			Registry: reg, Codec: rpc.DefaultCostModel(), Costs: DefaultCosts(),
		})
		d.workers[ss.ID] = w
		proc := d.k.NewProcess(fmt.Sprintf("svc%d", ss.ID))
		d.k.SpawnPinned(proc, fmt.Sprintf("bypass%d", i), i%d.cores, w.Loop)
	}
}

func (d *driver) ServedFor(svc uint32) (uint64, bool) {
	w, ok := d.workers[svc]
	if !ok {
		return 0, false
	}
	return w.Stats().Served, true
}

// DMANIC exposes the descriptor-ring NIC for tests and experiments; the
// cluster layer surfaces it via an optional-interface assertion.
func (d *driver) DMANIC() *nicdma.NIC { return d.nic }
