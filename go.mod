module lauberhorn

go 1.24
